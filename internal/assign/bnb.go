package assign

import (
	"context"
	"math"
	"sort"
	"time"

	"gridvo/internal/fault"
)

// Options configure Solve.
type Options struct {
	// NodeBudget caps explored branch-and-bound nodes. Zero selects
	// DefaultNodeBudget; negative means unlimited (use only in tests).
	NodeBudget int64
	// DisableHeuristics skips incumbent seeding (tests use this to
	// exercise the raw search).
	DisableHeuristics bool
	// LocalSearchPasses bounds the improvement passes applied to
	// heuristic incumbents; zero selects a sensible default.
	LocalSearchPasses int
	// CtxCheckEvery is the number of nodes explored between
	// context-cancellation checks; zero selects DefaultCtxCheckEvery.
	// Tests use small values to cancel at precise points.
	CtxCheckEvery int64
	// SeedAssign, when non-nil, is a warm-start hint of length NumTasks:
	// entries are instance-local GSP indices, with -1 (or any
	// out-of-range value) marking tasks whose previous executor is gone —
	// the shape a parent coalition's solution takes after an eviction.
	// The solver repairs the hint (reassigns orphaned tasks, restores
	// coverage, local-searches) and installs the result as the initial
	// incumbent when it is feasible and beats the constructive
	// heuristics. Seeds only ever tighten the incumbent — they never
	// affect lower bounds — so they cannot worsen the returned solution.
	// The slice is read, never modified or retained.
	SeedAssign []int
	// Inject, when non-nil, is the deterministic fault injector visited
	// once per solve (fault.PointSolve): it can delay the solve (Latency)
	// or abort the search after a small node count exactly the way a
	// context cancellation would (Cancel). The nil default costs a single
	// pointer check.
	Inject *fault.Injector
}

// DefaultNodeBudget bounds the search on large instances. A node costs
// tens of nanoseconds, so the default keeps a single solve well under a
// second while still proving optimality for the small VO-iteration
// instances that dominate the mechanism's work.
const DefaultNodeBudget = 2_000_000

// DefaultCtxCheckEvery is how many nodes the search explores between
// ctx.Err() polls: frequent enough that a deadline overshoots by well
// under a millisecond, rare enough to stay off the hot path.
const DefaultCtxCheckEvery = 2048

// Solve finds a minimum-cost assignment for the instance using exact
// branch-and-bound warmed by heuristic incumbents. The returned solution's
// Optimal flag reports whether the search completed (optimality or
// infeasibility proven); when the node budget interrupts it, the best
// incumbent and the root lower bound are returned instead. It is SolveCtx
// with a background context.
func Solve(in *Instance, opts Options) Solution {
	return SolveCtx(context.Background(), in, opts)
}

// SolveCtx is Solve honoring ctx alongside the node budget: the search
// polls ctx.Err() every Options.CtxCheckEvery nodes and, on cancellation
// or deadline expiry, stops and returns the best incumbent found so far
// with Optimal == false — never an error-and-nothing. An already-cancelled
// context skips the tree search entirely (Stats.Nodes == 0) but still
// seeds heuristic incumbents, so callers under an expired deadline get a
// usable (possibly sub-optimal) assignment whenever the heuristics find
// one.
//
//gridvolint:ignore noclock Stats.WallTime measurement only, never control flow
func SolveCtx(ctx context.Context, in *Instance, opts Options) Solution {
	if err := in.Validate(); err != nil {
		panic(err) // programming error: instances are built by this module's callers
	}
	// Fault hook: one visit per solve. A Latency plan sleeps here; a
	// Cancel plan aborts the search after CancelAfterNodes nodes through
	// the same path as a real context cancellation (Stats.Interrupted()
	// becomes true, so the result is never cached).
	var cancelAfter int64
	if plan := opts.Inject.Visit(fault.PointSolve); plan.Fired() {
		switch plan.Class {
		case fault.Latency:
			time.Sleep(plan.Sleep)
		case fault.Cancel:
			cancelAfter = plan.CancelAfterNodes
		}
	}
	start := time.Now()
	k, n := in.NumGSPs(), in.NumTasks()
	sol := Solution{LowerBound: lowerBoundTotal(in)}

	// Degenerate shapes.
	if k == 0 {
		sol.Feasible = n == 0
		sol.Optimal = true
		sol.Assign = []int{}
		sol.Stats.WallTime = time.Since(start)
		return sol
	}
	if n < k {
		// Constraint (13) unsatisfiable: fewer tasks than GSPs.
		sol.Optimal = true
		sol.Stats.WallTime = time.Since(start)
		return sol
	}

	budget := opts.NodeBudget
	if budget == 0 {
		budget = DefaultNodeBudget
	}

	s := newSearcher(ctx, in, opts, budget, -1)
	s.cancelAfter = cancelAfter

	// Seed incumbents.
	seedIncumbents(in, opts, s)

	if ctx.Err() != nil {
		// Already cancelled: return the heuristic incumbent immediately.
		s.ctxAborted, s.aborted = true, true
		s.prunedDeadline++
	} else {
		s.prepare()
		s.dfs(0, 0)
	}

	if s.bestAssign != nil {
		sol.Feasible = true
		// Canonical cost: recompute in task-index order so the reported
		// figure does not depend on which incumbent (heuristic, seed, or
		// tree search, each summing in a different order) happened to win
		// — warm- and cold-started solves that find the same assignment
		// report bit-identical costs.
		sol.Cost = TotalCost(in, s.bestAssign)
		sol.Assign = append([]int(nil), s.bestAssign...)
	}
	s.fill(&sol)
	s.release()
	sol.Optimal = !s.aborted
	if sol.Feasible && sol.Cost <= sol.LowerBound+Eps {
		// Incumbent meets the global lower bound: optimal regardless of
		// whether the search was truncated.
		sol.Optimal = true
	}
	sol.Stats.WallTime = time.Since(start)
	return sol
}

// newSearcher builds the DFS state shared by the serial and root-split
// solvers. rootOnly restricts the first branching task (-1 = full search).
func newSearcher(ctx context.Context, in *Instance, opts Options, budget int64, rootOnly int) *searcher {
	checkEvery := opts.CtxCheckEvery
	if checkEvery <= 0 {
		checkEvery = DefaultCtxCheckEvery
	}
	return &searcher{
		in:           in,
		k:            in.NumGSPs(),
		n:            in.NumTasks(),
		budget:       budget,
		bestCost:     math.Inf(1),
		cap:          in.budgetCap(),
		rootOnly:     rootOnly,
		ctx:          ctx,
		checkEvery:   checkEvery,
		ctxCountdown: checkEvery,
	}
}

// seedIncumbents warms the searcher with heuristic assignments and, when
// Options.SeedAssign is set, the repaired warm-start seed. Heuristics run
// first so the seed counters can report whether inherited incumbents beat
// them.
func seedIncumbents(in *Instance, opts Options, s *searcher) {
	if !opts.DisableHeuristics {
		n := in.NumTasks()
		candidates := []Heuristic{HeuristicGreedyCost, HeuristicMCT}
		if n <= 1024 {
			candidates = append(candidates, HeuristicMinMin, HeuristicSufferage)
		}
		for _, h := range candidates {
			a := RunHeuristic(in, h)
			if a == nil {
				continue
			}
			LocalSearch(in, a, opts.LocalSearchPasses)
			if Verify(in, a) != nil {
				continue
			}
			if c := TotalCost(in, a); c < s.bestCost {
				s.bestCost = c
				s.bestAssign = append(s.bestAssign[:0], a...)
				s.incumbents++
			}
		}
	}
	if opts.SeedAssign != nil {
		if a := repairSeed(in, opts.SeedAssign, opts.LocalSearchPasses); a != nil {
			s.seedAccepted = 1
			if c := TotalCost(in, a); c < s.bestCost {
				s.bestCost = c
				s.bestAssign = append(s.bestAssign[:0], a...)
				s.incumbents++
				s.seedWins = 1
			}
		}
	}
}

// searcher holds the DFS state for one Solve call.
type searcher struct {
	in     *Instance
	k, n   int
	budget int64
	cap    float64 // budget constraint (payment), +Inf if none

	order     []int     // tasks in branching order (descending max time)
	gspOrder  [][]int   // per ordered-task: GSPs by ascending cost
	sufMin    []float64 // sufMin[idx] = Σ_{q>=idx} min_g cost(g, order[q])
	load      []float64
	count     []int
	uncovered int
	assign    []int // assign[orderPos] = gsp

	bestCost   float64
	bestAssign []int // indexed by task id (not order position)
	nodes      int64
	aborted    bool

	// Context plumbing: ctx is polled every checkEvery nodes via a
	// countdown so the hot loop stays divisor-free.
	ctx          context.Context
	checkEvery   int64
	ctxCountdown int64
	ctxAborted   bool
	// cancelAfter, when positive, aborts the search after that many nodes
	// through the cancellation path — the injected mid-search fault.
	cancelAfter int64

	// Instrumentation counters feeding Solution.Stats.
	prunedBound    int64
	prunedDeadline int64
	prunedBudget   int64
	incumbents     int64
	seedAccepted   int64
	seedWins       int64

	// scratch is the pooled buffer set backing the slices above; release()
	// returns it once the solve no longer references them.
	scratch *searchScratch

	// rootOnly, when >= 0, restricts the first branching task to that
	// GSP — SolveParallel's disjoint root split. Constructors must set
	// it explicitly (-1 for a full search): the int zero value would
	// silently mean "GSP 0 only".
	rootOnly int
}

// fill copies the searcher's counters into a solution's diagnostics.
func (s *searcher) fill(sol *Solution) {
	sol.Nodes += s.nodes
	sol.NodeBudgetHit = sol.NodeBudgetHit || (s.aborted && !s.ctxAborted)
	sol.Stats.Nodes += s.nodes
	sol.Stats.PrunedByBound += s.prunedBound
	sol.Stats.PrunedByDeadline += s.prunedDeadline
	sol.Stats.PrunedByBudget += s.prunedBudget
	sol.Stats.IncumbentUpdates += s.incumbents
	sol.Stats.SeedAccepted += s.seedAccepted
	sol.Stats.SeedWins += s.seedWins
}

func (s *searcher) prepare() {
	in := s.in
	sc := scratchPool.Get().(*searchScratch)
	s.scratch = sc
	s.order = growInts(&sc.order, s.n)
	for j := range s.order {
		s.order[j] = j
	}
	// Branch on hard (long) tasks first: they constrain the deadline
	// most, failing early instead of deep.
	maxT := growFloats(&sc.maxT, s.n)
	for j := 0; j < s.n; j++ {
		maxT[j] = maxTime(in, j)
	}
	sort.SliceStable(s.order, func(a, b int) bool { return maxT[s.order[a]] > maxT[s.order[b]] })

	// gspOrder rows share one flat backing array (better locality, one
	// allocation). Every row is reset to the identity permutation before
	// sorting so pooled leftovers cannot perturb the stable sort.
	flat := growInts(&sc.gspFlat, s.n*s.k)
	if cap(sc.gspRows) < s.n {
		sc.gspRows = make([][]int, s.n)
	}
	s.gspOrder = sc.gspRows[:s.n]
	for pos, t := range s.order {
		gs := flat[pos*s.k : (pos+1)*s.k : (pos+1)*s.k]
		for g := range gs {
			gs[g] = g
		}
		sort.SliceStable(gs, func(a, b int) bool { return in.Cost[gs[a]][t] < in.Cost[gs[b]][t] })
		s.gspOrder[pos] = gs
	}

	s.sufMin = growFloats(&sc.sufMin, s.n+1)
	s.sufMin[s.n] = 0
	for pos := s.n - 1; pos >= 0; pos-- {
		t := s.order[pos]
		m := in.Cost[0][t]
		for g := 1; g < s.k; g++ {
			if in.Cost[g][t] < m {
				m = in.Cost[g][t]
			}
		}
		s.sufMin[pos] = s.sufMin[pos+1] + m
	}

	s.load = growFloats(&sc.load, s.k)
	s.count = growInts(&sc.count, s.k)
	for g := 0; g < s.k; g++ {
		s.load[g] = 0
		s.count[g] = 0
	}
	s.uncovered = s.k
	s.assign = growInts(&sc.assign, s.n)
}

// release returns the pooled scratch buffers. The searcher's slice views
// are nilled so a use-after-release fails loudly instead of corrupting a
// concurrent solve; bestAssign is not pooled and stays valid.
func (s *searcher) release() {
	if s.scratch == nil {
		return
	}
	s.order, s.gspOrder, s.sufMin, s.load, s.count, s.assign = nil, nil, nil, nil, nil, nil
	scratchPool.Put(s.scratch)
	s.scratch = nil
}

func (s *searcher) dfs(pos int, costSoFar float64) {
	if s.aborted {
		return
	}
	s.nodes++
	if s.budget > 0 && s.nodes > s.budget {
		s.aborted = true
		s.prunedBudget++
		return
	}
	if s.cancelAfter > 0 && s.nodes > s.cancelAfter {
		s.aborted = true
		s.ctxAborted = true
		s.prunedDeadline++
		return
	}
	if s.ctxCountdown--; s.ctxCountdown <= 0 {
		s.ctxCountdown = s.checkEvery
		if s.ctx.Err() != nil {
			s.aborted = true
			s.ctxAborted = true
			s.prunedDeadline++
			return
		}
	}
	if pos == s.n {
		if s.uncovered == 0 && costSoFar < s.bestCost && costSoFar <= s.cap+Eps {
			s.bestCost = costSoFar
			if s.bestAssign == nil {
				s.bestAssign = make([]int, s.n)
			}
			for p, t := range s.order {
				s.bestAssign[t] = s.assign[p]
			}
			s.incumbents++
		}
		return
	}
	remaining := s.n - pos
	if s.uncovered > remaining {
		s.prunedBound++
		return // cannot cover every GSP anymore
	}
	bound := costSoFar + s.sufMin[pos]
	if bound >= s.bestCost-Eps || bound > s.cap+Eps {
		s.prunedBound++
		return
	}
	t := s.order[pos]
	mustCover := s.uncovered == remaining
	for _, g := range s.gspOrder[pos] {
		if pos == 0 && s.rootOnly >= 0 && g != s.rootOnly {
			continue
		}
		if mustCover && s.count[g] > 0 {
			continue
		}
		ct := s.in.Cost[g][t]
		if costSoFar+ct+s.sufMin[pos+1] >= s.bestCost-Eps {
			// GSPs are cost-sorted: no later g can be better either,
			// unless the coverage filter skipped cheaper ones.
			if !mustCover {
				break
			}
			continue
		}
		tt := s.in.Time[g][t]
		if s.load[g]+tt > s.in.Deadline+Eps {
			continue
		}
		s.load[g] += tt
		s.count[g]++
		if s.count[g] == 1 {
			s.uncovered--
		}
		s.assign[pos] = g
		s.dfs(pos+1, costSoFar+ct)
		s.load[g] -= tt
		s.count[g]--
		if s.count[g] == 0 {
			s.uncovered++
		}
		if s.aborted {
			return
		}
	}
}

// BruteForce enumerates every assignment (k^n) and returns the optimal
// solution, for cross-checking the branch-and-bound on small instances.
// It panics if k^n exceeds 50 million states.
func BruteForce(in *Instance) Solution {
	if err := in.Validate(); err != nil {
		panic(err)
	}
	k, n := in.NumGSPs(), in.NumTasks()
	sol := Solution{LowerBound: lowerBoundTotal(in), Optimal: true}
	if k == 0 {
		sol.Feasible = n == 0
		sol.Assign = []int{}
		return sol
	}
	states := math.Pow(float64(k), float64(n))
	if states > 50e6 {
		panic("assign: BruteForce instance too large")
	}
	assign := make([]int, n)
	best := math.Inf(1)
	var bestAssign []int
	capB := in.budgetCap()
	var rec func(j int)
	rec = func(j int) {
		if j == n {
			if err := Verify(in, assign); err != nil {
				return
			}
			if c := TotalCost(in, assign); c < best && c <= capB+Eps {
				best = c
				bestAssign = append(bestAssign[:0:0], assign...)
			}
			return
		}
		for g := 0; g < k; g++ {
			assign[j] = g
			rec(j + 1)
		}
	}
	rec(0)
	if bestAssign != nil {
		sol.Feasible = true
		sol.Cost = best
		sol.Assign = bestAssign
	}
	return sol
}
