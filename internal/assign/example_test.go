package assign_test

import (
	"fmt"

	"gridvo/internal/assign"
)

// ExampleSolve solves a tiny task-assignment IP: two GSPs, three tasks,
// every GSP must receive at least one task (constraint 13), and the total
// cost is minimized subject to the deadline.
func ExampleSolve() {
	in := &assign.Instance{
		// Cost[gsp][task]: GSP 0 is cheap for tasks 0-1, GSP 1 for task 2.
		Cost: [][]float64{
			{1, 2, 9},
			{8, 7, 3},
		},
		Time: [][]float64{
			{1, 1, 1},
			{1, 1, 1},
		},
		Deadline: 10,
	}
	sol := assign.Solve(in, assign.Options{})
	fmt.Printf("feasible: %v, optimal: %v\n", sol.Feasible, sol.Optimal)
	fmt.Printf("cost: %.0f\n", sol.Cost)
	fmt.Printf("assignment: %v\n", sol.Assign)
	fmt.Printf("verifies: %v\n", assign.Verify(in, sol.Assign) == nil)
	// Output:
	// feasible: true, optimal: true
	// cost: 6
	// assignment: [0 0 1]
	// verifies: true
}
