package assign

import (
	"fmt"
	"hash/fnv"
	"os"
	"testing"

	"gridvo/internal/xrand"
)

// TestTrajectorySnapshot writes an exact behavioral fingerprint of the
// solver across a corpus of random instances to the file named by
// GRIDVO_TRAJSNAP, or compares against it when the file exists.
func TestTrajectorySnapshot(t *testing.T) {
	path := os.Getenv("GRIDVO_TRAJSNAP")
	if path == "" {
		t.Skip("GRIDVO_TRAJSNAP not set")
	}
	var out []byte
	rng := xrand.New(12345)
	for trial := 0; trial < 120; trial++ {
		k := rng.UniformInt(1, 16)
		n := rng.UniformInt(k, 80)
		slack := rng.Uniform(0.2, 1.5)
		in := randomInstance(rng.SplitN("snap", trial), k, n, slack)
		for _, budget := range []int64{0, 5000} {
			sol := Solve(in, Options{NodeBudget: budget})
			h := fnv.New64a()
			for _, g := range sol.Assign {
				fmt.Fprintf(h, "%d,", g)
			}
			out = append(out, []byte(fmt.Sprintf(
				"trial=%d budget=%d feas=%v opt=%v cost=%x lb=%x nodes=%d inc=%d pb=%d ah=%x\n",
				trial, budget, sol.Feasible, sol.Optimal,
				fmt.Sprintf("%b", sol.Cost), fmt.Sprintf("%b", sol.LowerBound),
				sol.Nodes, sol.Stats.IncumbentUpdates, sol.Stats.PrunedByBound, h.Sum64()))...)
		}
	}
	if prev, err := os.ReadFile(path); err == nil {
		if string(prev) != string(out) {
			os.WriteFile(path+".new", out, 0o644)
			t.Fatalf("trajectory diverged from %s (new written to %s.new)", path, path)
		}
		return
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}
