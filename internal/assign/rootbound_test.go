package assign

import (
	"testing"

	"gridvo/internal/xrand"
)

// TestLPRootBoundBrackets checks the bound hierarchy on random
// instances: Σ-min ≤ LP bound ≤ optimal cost (within Eps slack for the
// simplex's own tolerance).
func TestLPRootBoundBrackets(t *testing.T) {
	rng := xrand.New(21)
	tightened := 0
	for trial := 0; trial < 30; trial++ {
		k := 2 + rng.IntN(3)
		n := k + rng.IntN(6)
		in := randomInstance(rng, k, n, 0.7+0.6*rng.Float64())
		sum := lowerBoundTotal(in)
		lb := rootLowerBound(in, RootBoundLP)
		if lb < sum {
			t.Fatalf("trial %d: LP bound %v below Σ-min %v", trial, lb, sum)
		}
		if lb > sum {
			tightened++
		}
		sol := Solve(in, Options{NodeBudget: -1})
		if sol.Feasible && sol.Cost < lb-Eps {
			t.Fatalf("trial %d: LP bound %v exceeds optimal cost %v", trial, lb, sol.Cost)
		}
	}
	if tightened == 0 {
		t.Error("LP bound never strengthened Σ-min across 30 random instances")
	}
}

// TestRootBoundLPSameSolution: the bound policy must not change what the
// solver returns, only how it proves it.
func TestRootBoundLPSameSolution(t *testing.T) {
	rng := xrand.New(22)
	for trial := 0; trial < 15; trial++ {
		in := randomInstance(rng, 2+rng.IntN(3), 4+rng.IntN(6), 0.8+rng.Float64())
		def := Solve(in, Options{NodeBudget: -1})
		lpb := Solve(in, Options{NodeBudget: -1, RootBound: RootBoundLP})
		if def.Feasible != lpb.Feasible || def.Cost != lpb.Cost {
			t.Fatalf("trial %d: solutions diverge: %v/%v vs %v/%v",
				trial, def.Feasible, def.Cost, lpb.Feasible, lpb.Cost)
		}
		if lpb.LowerBound < def.LowerBound {
			t.Fatalf("trial %d: LP lower bound %v weaker than Σ-min %v",
				trial, lpb.LowerBound, def.LowerBound)
		}
		if def.Optimal && !lpb.Optimal {
			t.Fatalf("trial %d: LP bound lost the optimality proof", trial)
		}
	}
}

// TestRootBoundLPSkipsSearch: when the LP bound proves a heuristic
// incumbent optimal, the tree search is skipped entirely.
func TestRootBoundLPSkipsSearch(t *testing.T) {
	// All costs equal: every full assignment costs n, the LP bound is n,
	// and the first heuristic already attains it.
	in := &Instance{
		Cost:     [][]float64{{1, 1, 1, 1, 1}, {1, 1, 1, 1, 1}},
		Time:     [][]float64{{1, 2, 1, 2, 1}, {2, 1, 2, 1, 2}},
		Deadline: 20,
	}
	sol := Solve(in, Options{RootBound: RootBoundLP})
	if !sol.Feasible || !sol.Optimal {
		t.Fatalf("expected optimal feasible solution, got %+v", sol)
	}
	if sol.Cost != 5 {
		t.Fatalf("cost %v, want 5", sol.Cost)
	}
	if sol.Stats.Nodes != 0 {
		t.Fatalf("tree search ran (%d nodes) despite a proving root bound", sol.Stats.Nodes)
	}
}

// TestLPRootBoundSizeGate: past LPRootBoundMaxVars variables the bound
// must silently fall back to Σ-min.
func TestLPRootBoundSizeGate(t *testing.T) {
	rng := xrand.New(23)
	in := randomInstance(rng, 8, 200, 1.2) // 1600 vars > gate
	if lb := rootLowerBound(in, RootBoundLP); lb != lowerBoundTotal(in) {
		t.Fatalf("size gate did not fall back: %v vs %v", lb, lowerBoundTotal(in))
	}
	if _, ok := lpRootBound(in); ok {
		t.Fatal("lpRootBound ignored the size gate")
	}
}

// TestLPRootBoundInfeasibleFallback: an infeasible relaxation (deadline
// too tight for any fractional assignment) falls back to Σ-min rather
// than emitting a bogus bound, and the solver still reports infeasible.
func TestLPRootBoundInfeasibleFallback(t *testing.T) {
	in := &Instance{
		Cost:     [][]float64{{1, 2, 3}, {3, 2, 1}},
		Time:     [][]float64{{5, 5, 5}, {5, 5, 5}},
		Deadline: 1, // no task fits anywhere
	}
	if lb := rootLowerBound(in, RootBoundLP); lb != lowerBoundTotal(in) {
		t.Fatalf("infeasible relaxation changed the bound: %v vs %v", lb, lowerBoundTotal(in))
	}
	sol := Solve(in, Options{NodeBudget: -1, RootBound: RootBoundLP})
	if sol.Feasible || !sol.Optimal {
		t.Fatalf("expected proven infeasibility, got %+v", sol)
	}
}
