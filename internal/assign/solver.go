package assign

import "context"

// Solver abstracts the assignment-IP solve so the layers above (the
// mechanism engine, the coalition game, the experiment harness) stay
// pluggable: the exact branch-and-bound is the default, but tests inject
// counting or stub solvers and future PRs can swap in LP-based or
// approximate backends without touching the callers.
type Solver interface {
	// SolveCtx solves the instance under the options, honoring ctx:
	// cancellation or deadline expiry interrupts the search and returns
	// the best incumbent found so far with Optimal == false — never an
	// error-and-nothing. Implementations must be deterministic for a
	// non-interrupted context.
	SolveCtx(ctx context.Context, in *Instance, opts Options) Solution
}

// SolverFunc adapts a plain function to the Solver interface.
type SolverFunc func(ctx context.Context, in *Instance, opts Options) Solution

// SolveCtx implements Solver.
func (f SolverFunc) SolveCtx(ctx context.Context, in *Instance, opts Options) Solution {
	return f(ctx, in, opts)
}

// DefaultSolver is the package's exact branch-and-bound as a Solver.
func DefaultSolver() Solver { return SolverFunc(SolveCtx) }
