package assign

import (
	"math"
	"testing"

	"gridvo/internal/xrand"
)

func TestMinMakespanKnownOptimum(t *testing.T) {
	// Two identical machines, tasks {3,3,2,2,2}: optimum is 6.
	in := &Instance{
		Cost:     [][]float64{{1, 1, 1, 1, 1}, {1, 1, 1, 1, 1}},
		Time:     [][]float64{{3, 3, 2, 2, 2}, {3, 3, 2, 2, 2}},
		Deadline: 100,
	}
	ms, optimal := MinMakespan(in, Options{})
	if !optimal {
		t.Fatal("tiny instance not proven optimal")
	}
	if math.Abs(ms-6) > 1e-9 {
		t.Fatalf("makespan = %v, want 6", ms)
	}
}

func TestMinMakespanUnrelatedMachines(t *testing.T) {
	// Machine 0 fast on task 0, machine 1 fast on task 1: optimum 1.
	in := &Instance{
		Cost:     [][]float64{{1, 1}, {1, 1}},
		Time:     [][]float64{{1, 10}, {10, 1}},
		Deadline: 100,
	}
	ms, optimal := MinMakespan(in, Options{})
	if !optimal || math.Abs(ms-1) > 1e-9 {
		t.Fatalf("makespan = %v optimal=%v, want 1, true", ms, optimal)
	}
}

func TestMinMakespanSingleMachine(t *testing.T) {
	in := &Instance{
		Cost:     [][]float64{{1, 1, 1}},
		Time:     [][]float64{{2, 3, 4}},
		Deadline: 100,
	}
	ms, optimal := MinMakespan(in, Options{})
	if !optimal || math.Abs(ms-9) > 1e-9 {
		t.Fatalf("makespan = %v, want 9", ms)
	}
}

func TestMinMakespanDegenerate(t *testing.T) {
	if ms, opt := MinMakespan(&Instance{}, Options{}); ms != 0 || !opt {
		t.Fatal("empty instance makespan wrong")
	}
}

func TestMinMakespanIsFeasibilityOracle(t *testing.T) {
	// Whenever Deadline < MinMakespan, Solve must report infeasible
	// (MinMakespan relaxes coverage/budget, so it lower-bounds the IP's
	// deadline feasibility threshold).
	rng := xrand.New(1)
	for trial := 0; trial < 30; trial++ {
		in := randomInstance(rng.SplitN("mk", trial), rng.UniformInt(1, 4), rng.UniformInt(4, 12), 1.0)
		ms, optimal := MinMakespan(in, Options{})
		if !optimal {
			continue
		}
		tight := *in
		tight.Deadline = ms * 0.9
		if sol := Solve(&tight, Options{}); sol.Feasible {
			t.Fatalf("trial %d: feasible below the makespan bound (%v < %v)", trial, tight.Deadline, ms)
		}
		// And at a comfortably larger deadline the instance (with
		// n >= k) should usually be feasible; at least never violate
		// the oracle direction.
		loose := *in
		loose.Deadline = ms * 4
		if in.NumTasks() >= in.NumGSPs() {
			if sol := Solve(&loose, Options{}); !sol.Feasible {
				t.Fatalf("trial %d: infeasible at 4x the optimal makespan", trial)
			}
		}
	}
}

func TestMinMakespanUpperBoundsLPT(t *testing.T) {
	// The exact result never exceeds the LPT schedule it starts from.
	rng := xrand.New(2)
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(rng.SplitN("lpt", trial), 3, 10, 1.0)
		ms, _ := MinMakespan(in, Options{})
		// Recompute LPT the same way.
		k, n := in.NumGSPs(), in.NumTasks()
		load := make([]float64, k)
		for t2 := 0; t2 < n; t2++ {
			best := 0
			for g := 1; g < k; g++ {
				if load[g]+in.Time[g][t2] < load[best]+in.Time[best][t2] {
					best = g
				}
			}
			load[best] += in.Time[best][t2]
		}
		lpt := 0.0
		for _, l := range load {
			if l > lpt {
				lpt = l
			}
		}
		if ms > lpt+1e-9 {
			t.Fatalf("trial %d: makespan %v above LPT %v", trial, ms, lpt)
		}
	}
}

func TestDeadlineTightness(t *testing.T) {
	in := &Instance{
		Cost:     [][]float64{{1}},
		Time:     [][]float64{{5}},
		Deadline: 10,
	}
	if got := DeadlineTightness(in, Options{}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("tightness = %v, want 2", got)
	}
	if !math.IsInf(DeadlineTightness(&Instance{}, Options{}), 1) {
		t.Fatal("degenerate tightness not +Inf")
	}
}

func TestMinMakespanNodeBudget(t *testing.T) {
	rng := xrand.New(3)
	in := randomInstance(rng, 6, 24, 1.0)
	ms, _ := MinMakespan(in, Options{NodeBudget: 50})
	if ms <= 0 {
		t.Fatal("budgeted makespan lost the incumbent")
	}
}
