package assign

import (
	"testing"

	"gridvo/internal/xrand"
)

func TestHeuristicStrings(t *testing.T) {
	names := map[Heuristic]string{
		HeuristicGreedyCost: "greedy-cost",
		HeuristicMCT:        "mct",
		HeuristicMinMin:     "min-min",
		HeuristicMaxMin:     "max-min",
		HeuristicSufferage:  "sufferage",
		Heuristic(99):       "unknown",
	}
	for h, want := range names {
		if h.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(h), h.String(), want)
		}
	}
}

func TestAllHeuristicsProduceValidAssignments(t *testing.T) {
	rng := xrand.New(1)
	heuristics := []Heuristic{HeuristicGreedyCost, HeuristicMCT, HeuristicMinMin, HeuristicMaxMin, HeuristicSufferage}
	for trial := 0; trial < 30; trial++ {
		in := randomInstance(rng.SplitN("h", trial), rng.UniformInt(1, 5), rng.UniformInt(5, 30), rng.Uniform(0.8, 2.0))
		for _, h := range heuristics {
			a := RunHeuristic(in, h)
			if a == nil {
				continue // heuristic failure is allowed; solver falls back
			}
			if err := Verify(in, a); err != nil {
				t.Fatalf("trial %d: %v produced invalid assignment: %v", trial, h, err)
			}
		}
	}
}

func TestHeuristicsNilWhenTooFewTasks(t *testing.T) {
	in := &Instance{
		Cost:     [][]float64{{1}, {1}},
		Time:     [][]float64{{1}, {1}},
		Deadline: 10,
	}
	for _, h := range []Heuristic{HeuristicGreedyCost, HeuristicMCT, HeuristicMinMin} {
		if RunHeuristic(in, h) != nil {
			t.Fatalf("%v produced assignment with n < k", h)
		}
	}
	if RunHeuristic(&Instance{}, HeuristicGreedyCost) != nil {
		t.Fatal("empty instance produced assignment")
	}
	if RunHeuristic(tiny(), Heuristic(99)) != nil {
		t.Fatal("unknown heuristic produced assignment")
	}
}

func TestGreedyCostPicksCheap(t *testing.T) {
	a := RunHeuristic(tiny(), HeuristicGreedyCost)
	if a == nil {
		t.Fatal("greedy failed on tiny")
	}
	if err := Verify(tiny(), a); err != nil {
		t.Fatal(err)
	}
	// Greedy should find the optimum on this trivially separable case.
	if c := TotalCost(tiny(), a); c != 6 {
		t.Fatalf("greedy cost = %v, want 6", c)
	}
}

func TestHeuristicsRespectImpossibleDeadline(t *testing.T) {
	in := tiny()
	in.Deadline = 0.5
	for _, h := range []Heuristic{HeuristicGreedyCost, HeuristicMCT, HeuristicMinMin, HeuristicMaxMin, HeuristicSufferage} {
		if RunHeuristic(in, h) != nil {
			t.Fatalf("%v produced assignment under impossible deadline", h)
		}
	}
}

func TestCoverageRepairWorks(t *testing.T) {
	// MCT naturally piles everything on the fast cheap GSP; repair must
	// then move one task to GSP 1.
	in := &Instance{
		Cost:     [][]float64{{1, 1, 1}, {50, 50, 50}},
		Time:     [][]float64{{1, 1, 1}, {1, 1, 1}},
		Deadline: 100,
	}
	a := RunHeuristic(in, HeuristicMCT)
	if a == nil {
		t.Fatal("mct failed")
	}
	if err := Verify(in, a); err != nil {
		t.Fatal(err)
	}
}

func TestLocalSearchImproves(t *testing.T) {
	in := tiny()
	// Deliberately bad but feasible assignment: 9 + 7 + 1... task0→1 (8),
	// task1→1 (7), task2→0 (9) = 24.
	a := []int{1, 1, 0}
	before := TotalCost(in, a)
	after := LocalSearch(in, a, 0)
	if after > before {
		t.Fatalf("LocalSearch made it worse: %v → %v", before, after)
	}
	if err := Verify(in, a); err != nil {
		t.Fatalf("LocalSearch broke feasibility: %v", err)
	}
	if after != 6 {
		t.Fatalf("LocalSearch cost = %v, want optimal 6 on separable instance", after)
	}
}

func TestLocalSearchKeepsCoverage(t *testing.T) {
	// Moving the only task of GSP 1 to GSP 0 would be cheaper but must
	// be refused to preserve constraint (13).
	in := &Instance{
		Cost:     [][]float64{{1, 1}, {10, 10}},
		Time:     [][]float64{{1, 1}, {1, 1}},
		Deadline: 10,
	}
	a := []int{0, 1}
	LocalSearch(in, a, 0)
	if err := Verify(in, a); err != nil {
		t.Fatal(err)
	}
}

func TestLocalSearchRespectsDeadline(t *testing.T) {
	// GSP 0 is cheap but its capacity fits only one task.
	in := &Instance{
		Cost:     [][]float64{{1, 1, 1}, {5, 5, 5}},
		Time:     [][]float64{{6, 6, 6}, {1, 1, 1}},
		Deadline: 10,
	}
	a := []int{0, 1, 1}
	LocalSearch(in, a, 0)
	if err := Verify(in, a); err != nil {
		t.Fatal(err)
	}
}

func TestHeuristicComparisonOnStructuredInstance(t *testing.T) {
	// Sanity: on a moderately sized instance all heuristics complete and
	// the solver is at least as good as each.
	rng := xrand.New(9)
	in := randomInstance(rng, 6, 60, 1.0)
	sol := Solve(in, Options{})
	if !sol.Feasible {
		t.Skip("instance infeasible")
	}
	for _, h := range []Heuristic{HeuristicGreedyCost, HeuristicMCT, HeuristicMinMin, HeuristicMaxMin, HeuristicSufferage} {
		a := RunHeuristic(in, h)
		if a == nil || Verify(in, a) != nil {
			continue
		}
		if TotalCost(in, a) < sol.Cost-1e-9 {
			t.Fatalf("%v beat the solver", h)
		}
	}
}
