//go:build !race

package assign

// raceEnabled reports whether the race detector instrumented this
// build; its allocations make AllocsPerRun assertions meaningless.
const raceEnabled = false
