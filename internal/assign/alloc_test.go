package assign

import (
	"testing"

	"gridvo/internal/xrand"
)

// TestSolveSteadyStateZeroAllocs pins the zero-allocation steady state:
// once the pools are warm and the caller supplies Options.AssignBuf,
// repeated solves of same-shape instances must not allocate at all. The
// engine's inner loop relies on this — any allocation regression on the
// Solve path shows up here as a hard failure rather than a benchmark
// drift.
func TestSolveSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc accounting is meaningless")
	}
	rng := xrand.New(31)
	in := randomInstance(rng, 4, 12, 1.1)
	opts := Options{AssignBuf: make([]int, 0, 12)}
	solve := func() {
		sol := Solve(in, opts)
		if !sol.Feasible {
			t.Fatal("instance unexpectedly infeasible")
		}
		opts.AssignBuf = sol.Assign[:0]
	}
	for i := 0; i < 3; i++ {
		solve() // warm the searcher/scratch pools
	}
	if allocs := testing.AllocsPerRun(50, solve); allocs != 0 {
		t.Fatalf("steady-state Solve allocates %.1f objects per run, want 0", allocs)
	}
}
