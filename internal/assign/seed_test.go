package assign

import (
	"context"
	"math"
	"testing"

	"gridvo/internal/xrand"
)

// seedVariants builds the warm-start hints the property tests exercise for
// an instance: the cold solution itself, projections with orphaned entries
// (the shape a parent coalition's assignment takes after an eviction),
// shifted/garbage hints, and hints of the wrong length.
func seedVariants(rng *xrand.RNG, in *Instance, cold []int) map[string][]int {
	k, n := in.NumGSPs(), in.NumTasks()
	variants := map[string][]int{}
	if cold != nil {
		variants["exact"] = append([]int(nil), cold...)

		holes := append([]int(nil), cold...)
		for j := range holes {
			if rng.Float64() < 0.3 {
				holes[j] = -1
			}
		}
		variants["orphaned"] = holes

		shifted := append([]int(nil), cold...)
		for j := range shifted {
			shifted[j] = (shifted[j] + 1) % k
		}
		variants["shifted"] = shifted
	}
	garbage := make([]int, n)
	for j := range garbage {
		garbage[j] = rng.UniformInt(-2, 3*k)
	}
	variants["garbage"] = garbage
	variants["allOrphans"] = make([]int, n) // filled below
	for j := range variants["allOrphans"] {
		variants["allOrphans"][j] = -1
	}
	variants["wrongLen"] = make([]int, n/2)
	return variants
}

// TestSeedNeverWorsens is the warm-start safety property: for any hint —
// exact, partially orphaned, systematically wrong, or unusable — the seeded
// solve is feasible whenever the cold solve is and its cost is never worse.
func TestSeedNeverWorsens(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 40; trial++ {
		k := rng.UniformInt(2, 5)
		n := rng.UniformInt(k, 14)
		slack := rng.Uniform(0.3, 1.5)
		in := randomInstance(rng.SplitN("inst", trial), k, n, slack)
		for _, budget := range []int64{0, 200} { // full search and truncated
			opts := Options{NodeBudget: budget}
			cold := Solve(in, opts)
			for name, seed := range seedVariants(rng.SplitN("seed", trial), in, cold.Assign) {
				warm := opts
				warm.SeedAssign = seed
				ws := Solve(in, warm)
				if cold.Feasible && !ws.Feasible {
					t.Fatalf("trial %d budget %d seed %q: cold feasible, seeded infeasible", trial, budget, name)
				}
				if cold.Feasible && ws.Cost > cold.Cost+Eps {
					t.Fatalf("trial %d budget %d seed %q: seeded cost %v worse than cold %v",
						trial, budget, name, ws.Cost, cold.Cost)
				}
				if ws.Feasible {
					if err := Verify(in, ws.Assign); err != nil {
						t.Fatalf("trial %d budget %d seed %q: seeded solution invalid: %v", trial, budget, name, err)
					}
				}
				if ws.Stats.SeedWins > ws.Stats.SeedAccepted {
					t.Fatalf("trial %d seed %q: SeedWins %d > SeedAccepted %d",
						trial, name, ws.Stats.SeedWins, ws.Stats.SeedAccepted)
				}
			}
		}
	}
}

// TestSeedOptimalFoundWithoutSearch feeds the known optimum as the seed
// with heuristics disabled: the solver must accept it (SeedAccepted,
// SeedWins) and return the same cost bit-identically, since canonical
// task-index-order costing makes the reported figure independent of which
// incumbent produced the assignment.
func TestSeedOptimalFoundWithoutSearch(t *testing.T) {
	rng := xrand.New(11)
	for trial := 0; trial < 20; trial++ {
		k := rng.UniformInt(2, 4)
		n := rng.UniformInt(k, 10)
		in := randomInstance(rng.SplitN("inst", trial), k, n, 1.0)
		cold := Solve(in, Options{})
		if !cold.Feasible {
			continue
		}
		ws := Solve(in, Options{DisableHeuristics: true, SeedAssign: cold.Assign})
		if !ws.Feasible || ws.Stats.SeedAccepted != 1 || ws.Stats.SeedWins != 1 {
			t.Fatalf("trial %d: optimal seed not installed: %+v", trial, ws.Stats)
		}
		if ws.Cost != cold.Cost {
			t.Fatalf("trial %d: seeded cost %v != cold cost %v (canonical costing broken)", trial, ws.Cost, cold.Cost)
		}
	}
}

// TestSeedUnusableIsIgnored verifies hints the repair cannot salvage leave
// the solve identical to a cold one, with SeedAccepted == 0.
func TestSeedUnusableIsIgnored(t *testing.T) {
	in := tiny()
	cold := Solve(in, Options{})
	for name, seed := range map[string][]int{
		"wrongLen": {0},
		"empty":    {},
	} {
		ws := Solve(in, Options{SeedAssign: seed})
		if ws.Stats.SeedAccepted != 0 {
			t.Fatalf("%s: unusable seed accepted: %+v", name, ws.Stats)
		}
		if ws.Cost != cold.Cost || ws.Feasible != cold.Feasible {
			t.Fatalf("%s: unusable seed changed the answer: %+v vs %+v", name, ws, cold)
		}
	}
}

// TestSolveParallelSeedDeterministic runs seeded root-split solves across
// worker counts: the assignment and cost must be bitwise identical — the
// parallel merge is deterministic and seeds do not introduce scheduling
// dependence.
func TestSolveParallelSeedDeterministic(t *testing.T) {
	rng := xrand.New(23)
	for trial := 0; trial < 10; trial++ {
		k := rng.UniformInt(2, 5)
		n := rng.UniformInt(k+2, 16)
		in := randomInstance(rng.SplitN("inst", trial), k, n, 1.0)
		cold := Solve(in, Options{})
		if !cold.Feasible {
			continue
		}
		seed := append([]int(nil), cold.Assign...)
		for j := range seed {
			if rng.Float64() < 0.25 {
				seed[j] = -1
			}
		}
		opts := Options{SeedAssign: seed}
		var ref Solution
		for workers := 1; workers <= 4; workers++ {
			sol := SolveParallelCtx(context.Background(), in, opts, workers)
			if !sol.Feasible {
				t.Fatalf("trial %d workers %d: seeded parallel solve infeasible", trial, workers)
			}
			if workers == 1 {
				ref = sol
				continue
			}
			if sol.Cost != ref.Cost {
				t.Fatalf("trial %d: workers=%d cost %v != workers=1 cost %v", trial, workers, sol.Cost, ref.Cost)
			}
			for j := range sol.Assign {
				if sol.Assign[j] != ref.Assign[j] {
					t.Fatalf("trial %d: workers=%d assignment differs at task %d", trial, workers, j)
				}
			}
		}
		if math.Abs(ref.Cost-cold.Cost) > Eps {
			t.Fatalf("trial %d: seeded parallel cost %v != serial cold cost %v", trial, ref.Cost, cold.Cost)
		}
	}
}
