// Package assign solves the task assignment problem at the core of the VO
// formation mechanism: the integer program (9)–(14) of the paper. Given a
// candidate VO of k GSPs and an n-task program, find the mapping of tasks
// to GSPs that minimizes total execution cost subject to
//
//	(10) total cost ≤ payment P (the budget),
//	(11) each GSP finishes its assigned tasks by the deadline d,
//	(12) every task is assigned to exactly one GSP,
//	(13) every GSP of the VO receives at least one task,
//	(14) integrality.
//
// This is a generalized-assignment-style NP-hard problem; the paper solves
// it with CPLEX branch-and-bound. This package provides a from-scratch
// exact branch-and-bound solver with heuristic incumbents (greedy coverage,
// MCT, Min-Min, Max-Min, Sufferage), a local-search improver, a brute-force
// reference solver for testing, and a solution verifier.
package assign
