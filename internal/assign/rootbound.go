package assign

import (
	"gridvo/internal/lp"
)

// RootBound selects how Solve computes the root lower bound on the
// optimal assignment cost.
type RootBound int

const (
	// RootBoundSum is the capacity-free Σ-min bound — Σ_j min_i
	// Cost[i][j] — computed in O(kn). The default, and the bound every
	// benchmark baseline was recorded with.
	RootBoundSum RootBound = iota
	// RootBoundLP solves the LP relaxation of the assignment IP
	// (assignment, deadline, coverage, and budget rows over fractional
	// x ∈ [0,1]) with the in-repo simplex and uses its objective when it
	// beats Σ-min. The LP bound dominates Σ-min whenever the deadline,
	// coverage, or budget rows bind, which is exactly when Σ-min is
	// loose; when the LP is gated by size or not solved to optimality
	// the bound falls back to Σ-min, so RootBoundLP is never weaker.
	// Opt-in: a tighter root bound can prove a heuristic incumbent
	// optimal before the tree search starts (skipping it entirely), so
	// node counts — and, on budget-truncated searches, trajectories —
	// differ from the default path.
	RootBoundLP
)

// LPRootBoundMaxVars gates RootBoundLP by problem size: instances with
// more than this many x[i][j] variables fall back to Σ-min. The dense
// two-phase simplex tableau is O((rows)·(vars+rows)) per pivot; at 1024
// variables a relaxation solves in single-digit milliseconds, which is
// already orders of magnitude above the Σ-min sweep — beyond it the
// bound would cost more than the search it is meant to shorten.
const LPRootBoundMaxVars = 1024

// rootLowerBound returns the root lower bound under the selected
// policy. It never returns less than Σ-min: the LP objective is used
// only when the relaxation solved to optimality and strengthened the
// bound.
func rootLowerBound(in *Instance, rb RootBound) float64 {
	lb := lowerBoundTotal(in)
	if rb != RootBoundLP {
		return lb
	}
	if l2, ok := lpRootBound(in); ok && l2 > lb {
		return l2
	}
	return lb
}

// lpRootBound solves the LP relaxation of the assignment IP and returns
// its objective. ok is false when the instance exceeds the size gate or
// the simplex did not finish Optimal (an infeasible relaxation — which
// proves the IP infeasible — is also reported as a fallback rather than
// a bound: the search discovers infeasibility itself, and a +Inf
// LowerBound would corrupt Gap reporting).
//
// Relaxation over x[i][j] ∈ [0,1] (upper bounds implied by the
// assignment rows):
//
//	min  Σ_{i,j} Cost[i][j]·x[i][j]
//	s.t. Σ_i x[i][j]  =  1           ∀j   (each task fully assigned)
//	     Σ_j Time[i][j]·x[i][j] ≤ d  ∀i   (deadline)
//	     Σ_j x[i][j]  ≥  1           ∀i   (coverage, constraint 13)
//	     Σ_{i,j} Cost[i][j]·x[i][j] ≤ P   (budget, when P > 0)
func lpRootBound(in *Instance) (float64, bool) {
	k, n := in.NumGSPs(), in.NumTasks()
	if k == 0 || n == 0 || k*n > LPRootBoundMaxVars {
		return 0, false
	}
	p := lp.NewProblem(k * n)
	obj := make([]float64, k*n)
	for i := 0; i < k; i++ {
		for j := 0; j < n; j++ {
			obj[i*n+j] = in.Cost[i][j]
		}
	}
	p.Minimize(obj)
	row := make([]float64, k*n)
	clear := func() {
		for idx := range row {
			row[idx] = 0
		}
	}
	for j := 0; j < n; j++ {
		clear()
		for i := 0; i < k; i++ {
			row[i*n+j] = 1
		}
		p.AddConstraint(row, lp.EQ, 1)
	}
	for i := 0; i < k; i++ {
		clear()
		for j := 0; j < n; j++ {
			row[i*n+j] = in.Time[i][j]
		}
		p.AddConstraint(row, lp.LE, in.Deadline)
		clear()
		for j := 0; j < n; j++ {
			row[i*n+j] = 1
		}
		p.AddConstraint(row, lp.GE, 1)
	}
	if in.Budget > 0 {
		p.AddConstraint(obj, lp.LE, in.Budget)
	}
	sol := p.Solve()
	if sol.Status != lp.Optimal {
		return 0, false
	}
	return sol.Objective, true
}
