package coalition

import (
	"math"
	"testing"

	"gridvo/internal/xrand"
)

func TestOptimalStructureAdditive(t *testing.T) {
	// Additive game: every partition has the same value, Σw.
	g := additive([]float64{1, 2, 3})
	structure, total := g.OptimalStructure()
	if math.Abs(total-6) > 1e-12 {
		t.Fatalf("total = %v, want 6", total)
	}
	if v, err := g.StructureValue(structure); err != nil || math.Abs(v-total) > 1e-12 {
		t.Fatalf("structure value %v err %v", v, err)
	}
}

func TestOptimalStructureSingletonsWin(t *testing.T) {
	// Strictly subadditive: v(S) = 1 for singletons, 0 otherwise —
	// the all-singletons structure is optimal with value n.
	g := NewGame(4, func(members []int) float64 {
		if len(members) == 1 {
			return 1
		}
		return 0
	})
	structure, total := g.OptimalStructure()
	if total != 4 {
		t.Fatalf("total = %v, want 4", total)
	}
	if len(structure) != 4 {
		t.Fatalf("blocks = %d, want 4 singletons", len(structure))
	}
}

func TestOptimalStructureGrandWins(t *testing.T) {
	// Superadditive convex game: grand coalition optimal.
	g := NewGame(4, func(members []int) float64 {
		return float64(len(members) * len(members))
	})
	structure, total := g.OptimalStructure()
	if total != 16 {
		t.Fatalf("total = %v, want 16", total)
	}
	if len(structure) != 1 || len(structure[0]) != 4 {
		t.Fatalf("structure = %v, want the grand coalition", structure)
	}
}

func TestOptimalStructureMatchesExhaustive(t *testing.T) {
	// Cross-check the DP against explicit enumeration on random games.
	for trial := 0; trial < 10; trial++ {
		rng := xrand.New(uint64(100 + trial))
		vals := map[uint64]float64{}
		g := NewGame(6, func(members []int) float64 {
			var mask uint64
			for _, i := range members {
				mask |= 1 << uint(i)
			}
			if v, ok := vals[mask]; ok {
				return v
			}
			v := rng.Uniform(0, 10)
			vals[mask] = v
			return v
		})
		_, dpTotal := g.OptimalStructure()
		bestExhaustive := math.Inf(-1)
		Partitions(6, func(structure [][]int) bool {
			v, err := g.StructureValue(structure)
			if err != nil {
				t.Fatal(err)
			}
			if v > bestExhaustive {
				bestExhaustive = v
			}
			return true
		})
		if math.Abs(dpTotal-bestExhaustive) > 1e-9 {
			t.Fatalf("trial %d: DP %v != exhaustive %v", trial, dpTotal, bestExhaustive)
		}
	}
}

func TestOptimalStructureDegenerate(t *testing.T) {
	g := NewGame(0, func([]int) float64 { return 0 })
	structure, total := g.OptimalStructure()
	if structure != nil || total != 0 {
		t.Fatal("empty game structure wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized OptimalStructure did not panic")
		}
	}()
	additive(make([]float64, 14)).OptimalStructure()
}

func TestStructureValueValidation(t *testing.T) {
	g := additive([]float64{1, 2, 3})
	if _, err := g.StructureValue([][]int{{0, 1}}); err == nil {
		t.Fatal("incomplete structure accepted")
	}
	if _, err := g.StructureValue([][]int{{0, 1}, {1, 2}}); err == nil {
		t.Fatal("overlapping structure accepted")
	}
	if _, err := g.StructureValue([][]int{{0, 1}, {5}}); err == nil {
		t.Fatal("out-of-range structure accepted")
	}
}

func TestPartitionsCounts(t *testing.T) {
	// Bell numbers: B(1)=1, B(2)=2, B(3)=5, B(4)=15, B(5)=52.
	bell := map[int]int{1: 1, 2: 2, 3: 5, 4: 15, 5: 52}
	for n, want := range bell {
		count := 0
		Partitions(n, func(structure [][]int) bool {
			count++
			// Each emitted structure must be a valid partition.
			seen := map[int]bool{}
			for _, b := range structure {
				for _, i := range b {
					if seen[i] {
						t.Fatal("duplicate player in partition")
					}
					seen[i] = true
				}
			}
			if len(seen) != n {
				t.Fatal("partition does not cover all players")
			}
			return true
		})
		if count != want {
			t.Fatalf("Partitions(%d) emitted %d, want Bell=%d", n, count, want)
		}
	}
}

func TestPartitionsEarlyStop(t *testing.T) {
	count := 0
	Partitions(4, func([][]int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop ignored: %d emissions", count)
	}
}

func TestPartitionsEmptyAndOversized(t *testing.T) {
	called := false
	Partitions(0, func(s [][]int) bool {
		called = true
		return s == nil
	})
	if !called {
		t.Fatal("Partitions(0) did not yield the empty partition")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized Partitions did not panic")
		}
	}()
	Partitions(11, func([][]int) bool { return true })
}
