package coalition_test

import (
	"fmt"

	"gridvo/internal/coalition"
)

// ExampleGame demonstrates the coalitional-game analytics on the classic
// 3-player majority game (v(S)=1 iff |S| ≥ 2): symmetric Shapley values,
// an empty core, and the least-core relaxation ε* = 1/3.
func ExampleGame() {
	g := coalition.NewGame(3, func(members []int) float64 {
		if len(members) >= 2 {
			return 1
		}
		return 0
	})

	phi := g.Shapley()
	fmt.Printf("Shapley: %.3f %.3f %.3f\n", phi[0], phi[1], phi[2])

	_, hasCore := g.CoreImputation()
	fmt.Printf("core non-empty: %v\n", hasCore)

	eps, _, err := g.LeastCoreEpsilon()
	if err != nil {
		panic(err)
	}
	fmt.Printf("least-core epsilon: %.3f\n", eps)
	// Output:
	// Shapley: 0.333 0.333 0.333
	// core non-empty: false
	// least-core epsilon: 0.333
}
