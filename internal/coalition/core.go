package coalition

import (
	"fmt"

	"gridvo/internal/lp"
)

// Core analytics via linear programming. The core of (G, v) is the set of
// payoff vectors ψ with Σψ = v(N) and Σ_{i∈S} ψᵢ ≥ v(S) for every
// coalition S — one LP constraint per coalition, so these routines are
// exponential in the player count and capped accordingly. They power the
// analysis examples and tests; the mechanism itself never needs them (the
// paper's prior work showed the VO formation game can have an empty core,
// which motivates TVOF's single-VO design).

// maxLPPlayers caps the LP-based analytics: 2^12 = 4096 constraints keeps
// the dense simplex comfortably fast.
const maxLPPlayers = 12

// CoreImputation decides core non-emptiness exactly: it returns a payoff
// vector in the core, or ok = false when the core is empty. Capped at 12
// players (the LP has 2^n − 1 constraints).
func (g *Game) CoreImputation() (psi []float64, ok bool) {
	if g.n == 0 {
		return nil, true
	}
	if g.n > maxLPPlayers {
		panic(fmt.Sprintf("coalition: CoreImputation limited to %d players, got %d", maxLPPlayers, g.n))
	}
	p := lp.NewProblem(g.n)
	// Any feasible point will do; minimize Σψ (constant on the
	// efficiency hyperplane) to keep the objective trivial.
	obj := make([]float64, g.n)
	for i := range obj {
		obj[i] = 1
	}
	p.Minimize(obj)

	grand := make([]float64, g.n)
	for i := range grand {
		grand[i] = 1
	}
	p.AddConstraint(grand, lp.EQ, g.Value(g.GrandCoalition()))

	total := uint64(1) << uint(g.n)
	for mask := uint64(1); mask < total-1; mask++ {
		members := Members(mask)
		v := g.Value(members)
		if v <= 0 {
			continue // ψ ≥ 0 implies the constraint
		}
		row := make([]float64, g.n)
		for _, i := range members {
			row[i] = 1
		}
		p.AddConstraint(row, lp.GE, v)
	}
	sol := p.Solve()
	if sol.Status != lp.Optimal {
		return nil, false
	}
	return sol.X, true
}

// LeastCoreEpsilon computes the least-core relaxation ε*: the smallest ε
// such that some efficient ψ satisfies Σ_{i∈S} ψᵢ ≥ v(S) − ε for every
// proper coalition S. ε* ≤ 0 iff the core is non-empty; its magnitude
// measures how far the game is from admitting a stable grand-coalition
// split. Returns the optimal ε and a payoff vector attaining it.
func (g *Game) LeastCoreEpsilon() (epsilon float64, psi []float64, err error) {
	if g.n == 0 {
		return 0, nil, nil
	}
	if g.n > maxLPPlayers {
		return 0, nil, fmt.Errorf("coalition: LeastCoreEpsilon limited to %d players, got %d", maxLPPlayers, g.n)
	}
	// Variables: ψ₀..ψ_{n-1}, ε⁺, ε⁻ (ε = ε⁺ − ε⁻ may be negative).
	n := g.n
	p := lp.NewProblem(n + 2)
	obj := make([]float64, n+2)
	obj[n] = 1
	obj[n+1] = -1
	p.Minimize(obj)

	grand := make([]float64, n+2)
	for i := 0; i < n; i++ {
		grand[i] = 1
	}
	p.AddConstraint(grand, lp.EQ, g.Value(g.GrandCoalition()))

	total := uint64(1) << uint(n)
	for mask := uint64(1); mask < total-1; mask++ {
		members := Members(mask)
		row := make([]float64, n+2)
		for _, i := range members {
			row[i] = 1
		}
		row[n] = 1    // +ε⁺
		row[n+1] = -1 // −ε⁻
		p.AddConstraint(row, lp.GE, g.Value(members))
	}
	sol := p.Solve()
	if sol.Status != lp.Optimal {
		return 0, nil, fmt.Errorf("coalition: least-core LP %v", sol.Status)
	}
	return sol.X[n] - sol.X[n+1], sol.X[:n], nil
}
