package coalition

import "sort"

// Outcome is the bicriteria evaluation of a VO from one member's point of
// view: the equal-share payoff (eq. 16) and a reputation criterion for the
// VO's members (eq. 17). The paper states the reputation criterion as the
// *average* global reputation, but the proof of Theorem 1 argues with the
// *total* reputation ("removing G decreases the total reputation of GSPs
// in C"); evaluators choose which value to put in Reputation — the
// preference relation is agnostic. The hedonic relation ≽ compares
// Outcomes by Pareto dominance over (Payoff, Reputation).
type Outcome struct {
	Payoff     float64
	Reputation float64
}

// Prefers reports whether outcome a is strictly preferred to b under the
// paper's bicriteria objective, interpreted as Pareto dominance: at least
// as good in both criteria and strictly better in one.
func (a Outcome) Prefers(b Outcome) bool {
	return a.Payoff >= b.Payoff && a.Reputation >= b.Reputation &&
		(a.Payoff > b.Payoff || a.Reputation > b.Reputation)
}

// WeaklyPrefers reports a ≽ b: at least as good in both criteria.
func (a Outcome) WeaklyPrefers(b Outcome) bool {
	return a.Payoff >= b.Payoff && a.Reputation >= b.Reputation
}

// OutcomeFunc evaluates a coalition from member i's point of view. With
// equal sharing and a common reputation average the evaluation is the same
// for every member, but the signature keeps member identity for
// generality (and for tests that inject asymmetric preferences).
type OutcomeFunc func(member int, coalition []int) Outcome

// IsIndividuallyStable implements Definition 1: coalition C is individually
// stable if there is no member G_i whose departure would be a Pareto
// improvement for the remaining members — every j weakly prefers C\{G_i}
// and at least one strictly prefers it. The strictness requirement follows
// the paper's reading of the definition in the proof of Theorem 1
// ("leaving G as part of the VO makes other GSPs in C *unhappy*"): a
// departure that leaves everyone exactly indifferent destabilizes nothing.
// The second return names a destabilizing member when unstable.
func IsIndividuallyStable(coalition []int, eval OutcomeFunc) (bool, int) {
	if len(coalition) <= 1 {
		return true, -1
	}
	for _, gi := range coalition {
		without := removeMember(coalition, gi)
		allWeak := true
		someStrict := false
		for _, gj := range without {
			after, before := eval(gj, without), eval(gj, coalition)
			if !after.WeaklyPrefers(before) {
				allWeak = false
				break
			}
			if after.Prefers(before) {
				someStrict = true
			}
		}
		if allWeak && someStrict {
			return false, gi
		}
	}
	return true, -1
}

func removeMember(coalition []int, member int) []int {
	out := make([]int, 0, len(coalition)-1)
	for _, g := range coalition {
		if g != member {
			out = append(out, g)
		}
	}
	return out
}

// Candidate is one VO under bicriteria evaluation, used for Pareto-front
// extraction over the feasible VO list L of the mechanism.
type Candidate struct {
	Members []int
	Outcome Outcome
}

// ParetoFront returns the subset of candidates not Pareto-dominated in
// (payoff, average reputation), in input order. Duplicated outcomes are
// all retained (they dominate each other weakly but not strictly).
func ParetoFront(cands []Candidate) []Candidate {
	var front []Candidate
	for i, c := range cands {
		dominated := false
		for j, d := range cands {
			if i == j {
				continue
			}
			if d.Outcome.Prefers(c.Outcome) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	return front
}

// BestByPayoff returns the index of the candidate with the highest payoff,
// ties broken toward higher average reputation, then lower index. Returns
// -1 for an empty list. This is TVOF's final selection rule
// (k = argmax v(C)/|C|, Algorithm 1 line 14).
//
//gridvolint:ignore floatcmp deterministic tie-break: bitwise-equal payoffs are the tie condition
func BestByPayoff(cands []Candidate) int {
	best := -1
	for i, c := range cands {
		if best == -1 {
			best = i
			continue
		}
		b := cands[best]
		if c.Outcome.Payoff > b.Outcome.Payoff ||
			(c.Outcome.Payoff == b.Outcome.Payoff && c.Outcome.Reputation > b.Outcome.Reputation) {
			best = i
		}
	}
	return best
}

// BestByProduct returns the index of the candidate maximizing
// payoff × average reputation — the comparator Fig. 4 of the paper uses to
// demonstrate Pareto optimality. Returns -1 for an empty list.
func BestByProduct(cands []Candidate) int {
	best := -1
	bestV := 0.0
	for i, c := range cands {
		v := c.Outcome.Payoff * c.Outcome.Reputation
		if best == -1 || v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// SortedMembers returns a sorted copy of a member list (candidates store
// members in eviction order; comparisons need canonical form).
func SortedMembers(members []int) []int {
	out := append([]int(nil), members...)
	sort.Ints(out)
	return out
}
