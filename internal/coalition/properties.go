package coalition

import "fmt"

// Structural property checks for small games. Superadditivity explains
// when the grand coalition is socially optimal; convexity guarantees a
// non-empty core (Shapley 1971) — the VO formation game has neither in
// general, which is why the paper restricts attention to a single stable
// VO. These checks are exponential and capped at 16 players (the paper's
// m), intended for analysis and tests.

// Caps: superadditivity enumerates O(3^n) disjoint pairs, convexity
// O(n·4^n) marginal pairs.
const (
	maxSuperadditivePlayers = 14
	maxConvexPlayers        = 10
)

// IsSuperadditive reports whether v(S ∪ T) ≥ v(S) + v(T) for all disjoint
// S, T within tol. When violated, the second return carries a witness
// (S, T) pair.
func (g *Game) IsSuperadditive(tol float64) (bool, [2][]int) {
	if g.n > maxSuperadditivePlayers {
		panic(fmt.Sprintf("coalition: IsSuperadditive limited to %d players", maxSuperadditivePlayers))
	}
	total := uint64(1) << uint(g.n)
	for s := uint64(1); s < total; s++ {
		vs := g.Value(Members(s))
		// Enumerate subsets t of the complement of s.
		comp := (total - 1) ^ s
		for t := comp; t != 0; t = (t - 1) & comp {
			if g.Value(Members(s|t)) < vs+g.Value(Members(t))-tol {
				return false, [2][]int{Members(s), Members(t)}
			}
		}
	}
	return true, [2][]int{}
}

// IsConvex reports whether the game is convex (supermodular):
// v(S ∪ {i}) − v(S) ≤ v(T ∪ {i}) − v(T) for all S ⊆ T not containing i —
// marginal contributions grow with coalition size. Convex games have
// non-empty cores containing the Shapley value. The witness is (i, S, T).
func (g *Game) IsConvex(tol float64) (bool, int, [2][]int) {
	if g.n > maxConvexPlayers {
		panic(fmt.Sprintf("coalition: IsConvex limited to %d players", maxConvexPlayers))
	}
	// Equivalent pairwise test: v(S∪T) + v(S∩T) ≥ v(S) + v(T) for all
	// S, T; the witness form below keeps the marginal-contribution view.
	total := uint64(1) << uint(g.n)
	for i := 0; i < g.n; i++ {
		bit := uint64(1) << uint(i)
		for s := uint64(0); s < total; s++ {
			if s&bit != 0 {
				continue
			}
			ms := g.Value(Members(s|bit)) - g.Value(Members(s))
			// Supersets t ⊇ s with i ∉ t: iterate over additions from
			// the complement.
			comp := (total - 1) ^ s ^ bit
			for add := comp; ; add = (add - 1) & comp {
				t := s | add
				mt := g.Value(Members(t|bit)) - g.Value(Members(t))
				if ms > mt+tol {
					return false, i, [2][]int{Members(s), Members(t)}
				}
				if add == 0 {
					break
				}
			}
		}
	}
	return true, -1, [2][]int{}
}
