package coalition

import "testing"

func TestIsSuperadditive(t *testing.T) {
	// Additive games are superadditive (with equality).
	ok, _ := additive([]float64{1, 2, 3}).IsSuperadditive(1e-9)
	if !ok {
		t.Fatal("additive game not superadditive")
	}
	// Strictly subadditive: singletons worth 1, everything else 0.
	sub := NewGame(3, func(members []int) float64 {
		if len(members) == 1 {
			return 1
		}
		return 0
	})
	ok, witness := sub.IsSuperadditive(1e-9)
	if ok {
		t.Fatal("subadditive game reported superadditive")
	}
	if len(witness[0]) == 0 || len(witness[1]) == 0 {
		t.Fatal("no witness returned")
	}
	// Witness must actually violate the inequality.
	s, tt := witness[0], witness[1]
	union := append(append([]int(nil), s...), tt...)
	if sub.Value(union) >= sub.Value(s)+sub.Value(tt) {
		t.Fatal("witness does not violate superadditivity")
	}
}

func TestIsConvex(t *testing.T) {
	// v(S) = |S|² is convex (marginals 2|S|+1 grow with |S|).
	convex := NewGame(4, func(members []int) float64 {
		return float64(len(members) * len(members))
	})
	if ok, _, _ := convex.IsConvex(1e-9); !ok {
		t.Fatal("quadratic game not recognized as convex")
	}
	// The 3-player majority game is superadditive but NOT convex:
	// adding a player to a 1-coalition gains 1, to a 2-coalition gains 0.
	if ok, i, witness := majority3().IsConvex(1e-9); ok {
		t.Fatal("majority game reported convex")
	} else {
		if i < 0 {
			t.Fatal("no witness player")
		}
		_ = witness
	}
	if ok, _ := majority3().IsSuperadditive(1e-9); !ok {
		t.Fatal("majority game should be superadditive")
	}
}

func TestConvexImpliesNonEmptyCore(t *testing.T) {
	// Shapley's theorem: convex ⇒ core non-empty. Cross-check both
	// implementations on the quadratic game.
	convex := NewGame(4, func(members []int) float64 {
		return float64(len(members) * len(members))
	})
	if ok, _, _ := convex.IsConvex(1e-9); !ok {
		t.Fatal("setup: game not convex")
	}
	if _, hasCore := convex.CoreImputation(); !hasCore {
		t.Fatal("convex game has an empty core?!")
	}
}

func TestPropertyCapsPanic(t *testing.T) {
	for i, f := range []func(){
		func() { additive(make([]float64, 15)).IsSuperadditive(0) },
		func() { additive(make([]float64, 11)).IsConvex(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
