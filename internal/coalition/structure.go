package coalition

import "fmt"

// Coalition-structure generation (Section II-C defines CS = {S₁,…,S_h} as
// a partition of the players). The paper's mechanism sidesteps optimal
// coalition-structure generation — only one VO executes the program — but
// the analytics here quantify what that shortcut costs: the optimal
// structure's social welfare is an upper bound on any single coalition's
// value.

// maxStructurePlayers caps the O(3^n) dynamic program; 3^13 ≈ 1.6M subset
// pairs stays fast.
const maxStructurePlayers = 13

// OptimalStructure computes a coalition structure maximizing the sum of
// coalition values, by the standard dynamic program over subsets:
// best(S) = max over the subset S' ⊆ S containing S's lowest player of
// v(S') + best(S∖S'). Returns the partition and its total value.
// It panics beyond maxStructurePlayers players.
func (g *Game) OptimalStructure() (structure [][]int, total float64) {
	if g.n == 0 {
		return nil, 0
	}
	if g.n > maxStructurePlayers {
		panic(fmt.Sprintf("coalition: OptimalStructure limited to %d players, got %d", maxStructurePlayers, g.n))
	}
	full := uint64(1)<<uint(g.n) - 1
	best := make([]float64, full+1)
	choice := make([]uint64, full+1)
	for mask := uint64(1); mask <= full; mask++ {
		// The lowest set bit must belong to some block; enumerate the
		// blocks containing it by iterating over submasks of mask that
		// include it.
		low := mask & (^mask + 1)
		rest := mask ^ low
		// sub iterates over subsets of rest; block = sub | low.
		var bestVal float64
		var bestBlock uint64
		first := true
		for sub := rest; ; sub = (sub - 1) & rest {
			block := sub | low
			val := g.Value(Members(block)) + best[mask^block]
			if first || val > bestVal {
				bestVal, bestBlock = val, block
				first = false
			}
			if sub == 0 {
				break
			}
		}
		best[mask] = bestVal
		choice[mask] = bestBlock
	}
	for mask := full; mask != 0; {
		block := choice[mask]
		structure = append(structure, Members(block))
		mask ^= block
	}
	return structure, best[full]
}

// StructureValue sums v over the blocks of a structure, validating that it
// is a partition of the players.
func (g *Game) StructureValue(structure [][]int) (float64, error) {
	seen := make([]bool, g.n)
	count := 0
	total := 0.0
	for _, block := range structure {
		for _, i := range block {
			if i < 0 || i >= g.n {
				return 0, fmt.Errorf("coalition: player %d out of range", i)
			}
			if seen[i] {
				return 0, fmt.Errorf("coalition: player %d in two blocks", i)
			}
			seen[i] = true
			count++
		}
		total += g.Value(block)
	}
	if count != g.n {
		return 0, fmt.Errorf("coalition: structure covers %d of %d players", count, g.n)
	}
	return total, nil
}

// Partitions enumerates every partition of n players (the Bell-number
// family), invoking yield with each structure; yield returning false stops
// the enumeration early. Intended for exhaustive tests on small n (Bell(10)
// ≈ 116k); it panics for n > 10.
func Partitions(n int, yield func([][]int) bool) {
	if n > 10 {
		panic("coalition: Partitions limited to 10 players")
	}
	if n == 0 {
		yield(nil)
		return
	}
	// Restricted-growth-string enumeration.
	rgs := make([]int, n)
	maxes := make([]int, n)
	emit := func() bool {
		blocks := 0
		for _, v := range rgs {
			if v+1 > blocks {
				blocks = v + 1
			}
		}
		structure := make([][]int, blocks)
		for i, v := range rgs {
			structure[v] = append(structure[v], i)
		}
		return yield(structure)
	}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			return emit()
		}
		limit := 0
		if i > 0 {
			limit = maxes[i-1] + 1
		}
		for v := 0; v <= limit; v++ {
			rgs[i] = v
			if i > 0 {
				maxes[i] = maxes[i-1]
			} else {
				maxes[i] = 0
			}
			if v > maxes[i] {
				maxes[i] = v
			}
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}
