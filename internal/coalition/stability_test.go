package coalition

import (
	"testing"
)

func TestOutcomePreference(t *testing.T) {
	a := Outcome{Payoff: 2, Reputation: 0.5}
	b := Outcome{Payoff: 1, Reputation: 0.5}
	c := Outcome{Payoff: 2, Reputation: 0.4}
	d := Outcome{Payoff: 1, Reputation: 0.9}
	if !a.Prefers(b) || !a.Prefers(c) {
		t.Fatal("dominance not detected")
	}
	if a.Prefers(a) {
		t.Fatal("outcome strictly prefers itself")
	}
	if !a.WeaklyPrefers(a) {
		t.Fatal("outcome does not weakly prefer itself")
	}
	// Incomparable outcomes: neither strictly preferred.
	if a.Prefers(d) || d.Prefers(a) {
		t.Fatal("incomparable outcomes reported as dominated")
	}
}

func TestIsIndividuallyStableSingleton(t *testing.T) {
	stable, who := IsIndividuallyStable([]int{3}, nil)
	if !stable || who != -1 {
		t.Fatal("singleton must be stable")
	}
	stable, _ = IsIndividuallyStable(nil, nil)
	if !stable {
		t.Fatal("empty coalition must be stable")
	}
}

func TestIsIndividuallyStableDetectsFreeloader(t *testing.T) {
	// Member 2 drags the outcome down: everyone strictly prefers the
	// coalition without it.
	eval := func(member int, coalition []int) Outcome {
		has2 := false
		for _, g := range coalition {
			if g == 2 {
				has2 = true
			}
		}
		if has2 {
			return Outcome{Payoff: 1, Reputation: 0.2}
		}
		return Outcome{Payoff: 5, Reputation: 0.8}
	}
	stable, who := IsIndividuallyStable([]int{0, 1, 2}, eval)
	if stable {
		t.Fatal("freeloader coalition reported stable")
	}
	if who != 2 {
		t.Fatalf("destabilizer = %d, want 2", who)
	}
}

func TestIsIndividuallyStableWhenRemovalHurts(t *testing.T) {
	// Payoff grows with size: removing anyone hurts the rest.
	eval := func(member int, coalition []int) Outcome {
		return Outcome{Payoff: float64(len(coalition)), Reputation: 0.5}
	}
	stable, _ := IsIndividuallyStable([]int{0, 1, 2, 3}, eval)
	if !stable {
		t.Fatal("growing-payoff coalition reported unstable")
	}
}

func TestIsIndividuallyStableWeakIndifference(t *testing.T) {
	// Removal leaves everyone exactly indifferent: nobody strictly
	// gains, so nothing destabilizes the coalition (see the strictness
	// discussion on IsIndividuallyStable).
	eval := func(member int, coalition []int) Outcome {
		return Outcome{Payoff: 1, Reputation: 0.5}
	}
	stable, _ := IsIndividuallyStable([]int{0, 1}, eval)
	if !stable {
		t.Fatal("indifferent coalition should be stable: no member strictly gains")
	}
}

func TestParetoFront(t *testing.T) {
	cands := []Candidate{
		{Members: []int{0}, Outcome: Outcome{Payoff: 1, Reputation: 0.9}}, // front
		{Members: []int{1}, Outcome: Outcome{Payoff: 3, Reputation: 0.5}}, // front
		{Members: []int{2}, Outcome: Outcome{Payoff: 2, Reputation: 0.4}}, // dominated by 1
		{Members: []int{3}, Outcome: Outcome{Payoff: 3, Reputation: 0.6}}, // front, dominates 1
	}
	front := ParetoFront(cands)
	ids := map[int]bool{}
	for _, c := range front {
		ids[c.Members[0]] = true
	}
	if ids[2] {
		t.Fatal("dominated candidate in front")
	}
	if !ids[0] || !ids[3] {
		t.Fatalf("front members wrong: %v", ids)
	}
	// Candidate 1 is dominated by 3 (3 ≥ 3 payoff and 0.6 > 0.5).
	if ids[1] {
		t.Fatal("candidate 1 should be dominated by candidate 3")
	}
	if got := ParetoFront(nil); got != nil {
		t.Fatal("empty front wrong")
	}
}

func TestParetoFrontKeepsDuplicates(t *testing.T) {
	cands := []Candidate{
		{Members: []int{0}, Outcome: Outcome{Payoff: 1, Reputation: 1}},
		{Members: []int{1}, Outcome: Outcome{Payoff: 1, Reputation: 1}},
	}
	if got := ParetoFront(cands); len(got) != 2 {
		t.Fatalf("duplicate outcomes dropped: %d", len(got))
	}
}

func TestBestByPayoff(t *testing.T) {
	cands := []Candidate{
		{Outcome: Outcome{Payoff: 1, Reputation: 0.5}},
		{Outcome: Outcome{Payoff: 3, Reputation: 0.2}},
		{Outcome: Outcome{Payoff: 3, Reputation: 0.9}},
	}
	if got := BestByPayoff(cands); got != 2 {
		t.Fatalf("BestByPayoff = %d, want 2 (payoff tie broken by reputation)", got)
	}
	if BestByPayoff(nil) != -1 {
		t.Fatal("empty BestByPayoff != -1")
	}
}

func TestBestByProduct(t *testing.T) {
	cands := []Candidate{
		{Outcome: Outcome{Payoff: 10, Reputation: 0.1}}, // product 1.0
		{Outcome: Outcome{Payoff: 3, Reputation: 0.5}},  // product 1.5
		{Outcome: Outcome{Payoff: 2, Reputation: 0.6}},  // product 1.2
	}
	if got := BestByProduct(cands); got != 1 {
		t.Fatalf("BestByProduct = %d, want 1", got)
	}
	if BestByProduct(nil) != -1 {
		t.Fatal("empty BestByProduct != -1")
	}
}

func TestSortedMembers(t *testing.T) {
	in := []int{3, 1, 2}
	got := SortedMembers(in)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("SortedMembers = %v", got)
	}
	if in[0] != 3 {
		t.Fatal("input mutated")
	}
}
