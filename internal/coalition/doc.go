// Package coalition implements the coalitional-game machinery of
// Section II-C of the paper: characteristic functions, the equal-share
// payoff division (eq. 18), imputations and the core, the Shapley value
// (for analysis; the paper adopts equal sharing for tractability), the
// hedonic preference relation, the individual-stability test of
// Definition 1, and Pareto-front extraction for the bicriteria
// (payoff, reputation) objective.
//
// Players are identified by dense indices 0..n-1 and coalitions by sorted
// index slices; internally coalitions are memoized by bitmask, so games are
// limited to 63 players — far above the m = 16 of the paper's experiments.
package coalition
