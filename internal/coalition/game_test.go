package coalition

import (
	"math"
	"testing"

	"gridvo/internal/xrand"
)

// additive returns a game where v(S) = Σ_{i∈S} w_i — the simplest game
// with known Shapley value (φ_i = w_i) and non-empty core.
func additive(w []float64) *Game {
	return NewGame(len(w), func(members []int) float64 {
		s := 0.0
		for _, i := range members {
			s += w[i]
		}
		return s
	})
}

// majority3 is the classic 3-player majority game: v(S)=1 iff |S| >= 2.
// Its core is empty; its Shapley value is (1/3, 1/3, 1/3).
func majority3() *Game {
	return NewGame(3, func(members []int) float64 {
		if len(members) >= 2 {
			return 1
		}
		return 0
	})
}

func TestNewGamePanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewGame(-1, func([]int) float64 { return 0 }) },
		func() { NewGame(64, func([]int) float64 { return 0 }) },
		func() { NewGame(3, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestValueAndMemoization(t *testing.T) {
	calls := 0
	g := NewGame(4, func(members []int) float64 {
		calls++
		return float64(len(members))
	})
	if g.Value([]int{0, 2}) != 2 {
		t.Fatal("value wrong")
	}
	if g.Value([]int{2, 0}) != 2 { // order-independent, cached
		t.Fatal("value wrong on reordered members")
	}
	if calls != 1 {
		t.Fatalf("value function called %d times, want 1 (memoized)", calls)
	}
	if g.Value(nil) != 0 {
		t.Fatal("v(∅) != 0")
	}
	if g.CacheSize() != 1 {
		t.Fatalf("cache size = %d", g.CacheSize())
	}
}

func TestMaskValidation(t *testing.T) {
	g := additive([]float64{1, 2})
	for i, members := range [][]int{{5}, {-1}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			g.Mask(members)
		}()
	}
}

func TestMembersRoundTrip(t *testing.T) {
	g := additive(make([]float64, 10))
	in := []int{0, 3, 7, 9}
	got := Members(g.Mask(in))
	if len(got) != 4 {
		t.Fatalf("Members = %v", got)
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("Members = %v, want %v", got, in)
		}
	}
	if Members(0) != nil {
		t.Fatal("Members(0) != nil")
	}
}

func TestGrandCoalition(t *testing.T) {
	g := additive([]float64{1, 2, 3})
	gc := g.GrandCoalition()
	if len(gc) != 3 || gc[0] != 0 || gc[2] != 2 {
		t.Fatalf("GrandCoalition = %v", gc)
	}
}

func TestEqualShares(t *testing.T) {
	g := additive([]float64{3, 6, 9})
	if got := g.EqualShares([]int{0, 1}); got != 4.5 {
		t.Fatalf("EqualShares = %v, want 4.5", got)
	}
	if g.EqualShares(nil) != 0 {
		t.Fatal("EqualShares(∅) != 0")
	}
}

func TestIsImputation(t *testing.T) {
	g := additive([]float64{1, 2, 3})
	if !g.IsImputation([]float64{1, 2, 3}, 1e-9) {
		t.Fatal("additive payoff rejected")
	}
	// Individually irrational.
	if g.IsImputation([]float64{0, 3, 3}, 1e-9) {
		t.Fatal("irrational payoff accepted")
	}
	// Inefficient.
	if g.IsImputation([]float64{1, 2, 4}, 1e-9) {
		t.Fatal("inefficient payoff accepted")
	}
	if g.IsImputation([]float64{1, 2}, 1e-9) {
		t.Fatal("wrong length accepted")
	}
}

func TestInCoreAdditive(t *testing.T) {
	g := additive([]float64{1, 2, 3})
	ok, blocking := g.InCore([]float64{1, 2, 3}, 1e-9)
	if !ok {
		t.Fatalf("additive core check failed; blocking = %v", blocking)
	}
}

func TestInCoreMajorityEmpty(t *testing.T) {
	g := majority3()
	// Any efficient split of 1 is blocked by the two lowest-paid players.
	for _, psi := range [][]float64{
		{1.0 / 3, 1.0 / 3, 1.0 / 3},
		{0.5, 0.5, 0},
		{1, 0, 0},
	} {
		ok, blocking := g.InCore(psi, 1e-9)
		if ok {
			t.Fatalf("majority game payoff %v wrongly in core", psi)
		}
		if len(blocking) == 0 {
			t.Fatal("no blocking coalition reported")
		}
	}
}

func TestInCoreWrongLength(t *testing.T) {
	g := majority3()
	if ok, _ := g.InCore([]float64{1}, 0); ok {
		t.Fatal("wrong-length vector accepted")
	}
}

func TestShapleyAdditive(t *testing.T) {
	w := []float64{1.5, 2.5, 4}
	phi := additive(w).Shapley()
	for i := range w {
		if math.Abs(phi[i]-w[i]) > 1e-9 {
			t.Fatalf("Shapley = %v, want %v", phi, w)
		}
	}
}

func TestShapleyMajority(t *testing.T) {
	phi := majority3().Shapley()
	for i, p := range phi {
		if math.Abs(p-1.0/3) > 1e-9 {
			t.Fatalf("phi[%d] = %v, want 1/3", i, p)
		}
	}
}

func TestShapleyEfficiency(t *testing.T) {
	// Shapley value is efficient: Σφ_i = v(N). Random game.
	rng := xrand.New(1)
	vals := map[uint64]float64{}
	g := NewGame(6, func(members []int) float64 {
		// Deterministic pseudo-random superadditive-ish values derived
		// from the mask.
		var mask uint64
		for _, i := range members {
			mask |= 1 << uint(i)
		}
		if v, ok := vals[mask]; ok {
			return v
		}
		v := float64(len(members)) * rng.Float64() * 10
		vals[mask] = v
		return v
	})
	phi := g.Shapley()
	sum := 0.0
	for _, p := range phi {
		sum += p
	}
	grand := g.Value(g.GrandCoalition())
	if math.Abs(sum-grand) > 1e-9 {
		t.Fatalf("Σφ = %v, v(N) = %v", sum, grand)
	}
}

func TestShapleyPanicsOnLargeGame(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("large exact Shapley did not panic")
		}
	}()
	additive(make([]float64, 21)).Shapley()
}

func TestShapleyMonteCarloConverges(t *testing.T) {
	w := []float64{2, 5, 8}
	phi := additive(w).ShapleyMonteCarlo(xrand.New(7), 2000)
	for i := range w {
		if math.Abs(phi[i]-w[i]) > 0.5 {
			t.Fatalf("MC Shapley = %v, want ≈%v", phi, w)
		}
	}
}

func TestShapleyMonteCarloDegenerate(t *testing.T) {
	g := additive(nil)
	if got := g.ShapleyMonteCarlo(xrand.New(1), 10); len(got) != 0 {
		t.Fatal("empty game MC Shapley wrong")
	}
	g2 := additive([]float64{1})
	if got := g2.ShapleyMonteCarlo(xrand.New(1), 0); got[0] != 0 {
		t.Fatal("zero samples should yield zero vector")
	}
}

func TestEmptyGameShapley(t *testing.T) {
	if got := additive(nil).Shapley(); len(got) != 0 {
		t.Fatalf("empty Shapley = %v", got)
	}
}
