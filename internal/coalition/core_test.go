package coalition

import (
	"math"
	"testing"
)

func TestCoreImputationAdditive(t *testing.T) {
	g := additive([]float64{1, 2, 3})
	psi, ok := g.CoreImputation()
	if !ok {
		t.Fatal("additive game has a non-empty core")
	}
	inCore, blocking := g.InCore(psi, 1e-6)
	if !inCore {
		t.Fatalf("LP imputation %v not in core; blocked by %v", psi, blocking)
	}
}

func TestCoreImputationMajorityEmpty(t *testing.T) {
	if _, ok := majority3().CoreImputation(); ok {
		t.Fatal("3-player majority game has an empty core")
	}
}

func TestCoreImputationEmptyGame(t *testing.T) {
	g := NewGame(0, func([]int) float64 { return 0 })
	if _, ok := g.CoreImputation(); !ok {
		t.Fatal("empty game core check failed")
	}
}

func TestCoreImputationCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized CoreImputation did not panic")
		}
	}()
	additive(make([]float64, 13)).CoreImputation()
}

func TestLeastCoreMajority(t *testing.T) {
	// 3-player majority game: least-core ε* = 1/3 at ψ = (1/3,1/3,1/3).
	eps, psi, err := majority3().LeastCoreEpsilon()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eps-1.0/3) > 1e-6 {
		t.Fatalf("ε* = %v, want 1/3", eps)
	}
	for _, p := range psi {
		if math.Abs(p-1.0/3) > 1e-6 {
			t.Fatalf("least-core ψ = %v, want uniform 1/3", psi)
		}
	}
}

func TestLeastCoreNonPositiveWhenCoreNonEmpty(t *testing.T) {
	g := additive([]float64{2, 5})
	eps, psi, err := g.LeastCoreEpsilon()
	if err != nil {
		t.Fatal(err)
	}
	if eps > 1e-6 {
		t.Fatalf("ε* = %v > 0 despite non-empty core", eps)
	}
	sum := 0.0
	for _, p := range psi {
		sum += p
	}
	if math.Abs(sum-7) > 1e-6 {
		t.Fatalf("least-core ψ not efficient: %v", psi)
	}
}

func TestLeastCoreConsistentWithCoreImputation(t *testing.T) {
	// For several small games, core non-emptiness (LP feasibility) and
	// ε* ≤ 0 must agree.
	games := []*Game{
		additive([]float64{1, 1, 1}),
		majority3(),
		NewGame(3, func(members []int) float64 {
			// Superadditive convex-ish game: n².
			return float64(len(members) * len(members))
		}),
		NewGame(4, func(members []int) float64 {
			if len(members) >= 3 {
				return 10
			}
			return 0
		}),
	}
	for gi, g := range games {
		_, hasCore := g.CoreImputation()
		eps, _, err := g.LeastCoreEpsilon()
		if err != nil {
			t.Fatal(err)
		}
		if hasCore != (eps <= 1e-6) {
			t.Fatalf("game %d: core-nonempty=%v but ε*=%v", gi, hasCore, eps)
		}
	}
}

func TestLeastCoreOversized(t *testing.T) {
	if _, _, err := additive(make([]float64, 13)).LeastCoreEpsilon(); err == nil {
		t.Fatal("oversized least-core accepted")
	}
}

func TestLeastCoreEmptyGame(t *testing.T) {
	g := NewGame(0, func([]int) float64 { return 0 })
	eps, psi, err := g.LeastCoreEpsilon()
	if err != nil || eps != 0 || psi != nil {
		t.Fatal("empty game least core wrong")
	}
}
