package coalition

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"gridvo/internal/xrand"
)

// MaxPlayers bounds game size (coalitions are memoized as uint64 masks).
const MaxPlayers = 63

// ValueFunc is a characteristic function v: it returns the value of the
// coalition given by the sorted member list. Implementations must be
// deterministic; v(∅) must be 0.
type ValueFunc func(members []int) float64

// Game is a transferable-utility coalitional game (G, v) with memoized
// characteristic-function evaluations (the VO formation game's v requires
// an NP-hard IP solve per coalition, so caching matters).
type Game struct {
	n     int
	value ValueFunc
	cache map[uint64]float64
}

// NewGame creates a game with n players and characteristic function v.
// It panics if n is negative or exceeds MaxPlayers.
func NewGame(n int, v ValueFunc) *Game {
	if n < 0 || n > MaxPlayers {
		panic(fmt.Sprintf("coalition: NewGame with n=%d outside [0,%d]", n, MaxPlayers))
	}
	if v == nil {
		panic("coalition: NewGame with nil value function")
	}
	return &Game{n: n, value: v, cache: map[uint64]float64{}}
}

// N returns the number of players.
func (g *Game) N() int { return g.n }

// Mask converts a member list to its bitmask, validating the indices.
func (g *Game) Mask(members []int) uint64 {
	var m uint64
	for _, i := range members {
		if i < 0 || i >= g.n {
			panic(fmt.Sprintf("coalition: player %d out of range [0,%d)", i, g.n))
		}
		if m&(1<<uint(i)) != 0 {
			panic(fmt.Sprintf("coalition: duplicate player %d", i))
		}
		m |= 1 << uint(i)
	}
	return m
}

// Members converts a bitmask back to a sorted member list. Hot in cache
// keying and subset enumeration, so it preallocates exactly
// bits.OnesCount64 entries and jumps bit to bit with TrailingZeros64
// instead of walking all 64 positions.
func Members(mask uint64) []int {
	if mask == 0 {
		return nil
	}
	out := make([]int, 0, bits.OnesCount64(mask))
	for mask != 0 {
		i := bits.TrailingZeros64(mask)
		out = append(out, i)
		mask &^= 1 << uint(i)
	}
	return out
}

// Value returns v(C), memoized. The empty coalition is 0 by definition.
func (g *Game) Value(members []int) float64 {
	mask := g.Mask(members)
	if mask == 0 {
		return 0
	}
	if v, ok := g.cache[mask]; ok {
		return v
	}
	sorted := append([]int(nil), members...)
	sort.Ints(sorted)
	v := g.value(sorted)
	g.cache[mask] = v
	return v
}

// CacheSize reports how many coalitions have been evaluated (for solver
// cost accounting in experiments).
func (g *Game) CacheSize() int { return len(g.cache) }

// GrandCoalition returns the member list {0, …, n-1}.
func (g *Game) GrandCoalition() []int {
	out := make([]int, g.n)
	for i := range out {
		out[i] = i
	}
	return out
}

// EqualShares divides v(C) equally among the members of C (eq. 18):
// ψ_G(C) = (P − C(T,C))/|C| for every G ∈ C. It returns the per-member
// share, or 0 for the empty coalition.
func (g *Game) EqualShares(members []int) float64 {
	if len(members) == 0 {
		return 0
	}
	return g.Value(members) / float64(len(members))
}

// IsImputation reports whether payoff vector ψ (indexed by player) is an
// imputation of the grand coalition: individually rational (ψ_i ≥ v({i}))
// and efficient (Σψ_i = v(G)) within tol.
func (g *Game) IsImputation(psi []float64, tol float64) bool {
	if len(psi) != g.n {
		return false
	}
	sum := 0.0
	for i, p := range psi {
		if p < g.Value([]int{i})-tol {
			return false
		}
		sum += p
	}
	return math.Abs(sum-g.Value(g.GrandCoalition())) <= tol
}

// InCore reports whether ψ lies in the core: for every coalition S,
// Σ_{i∈S} ψ_i ≥ v(S) − tol. Exhaustive over 2^n subsets; n ≤ ~24 in
// practice. The second return names a blocking coalition when not in core.
func (g *Game) InCore(psi []float64, tol float64) (bool, []int) {
	if len(psi) != g.n {
		return false, nil
	}
	total := uint64(1) << uint(g.n)
	for mask := uint64(1); mask < total; mask++ {
		sum := 0.0
		for i := 0; i < g.n; i++ {
			if mask&(1<<uint(i)) != 0 {
				sum += psi[i]
			}
		}
		members := Members(mask)
		if sum < g.Value(members)-tol {
			return false, members
		}
	}
	return true, nil
}

// Shapley computes the exact Shapley value by subset enumeration:
// φ_i = Σ_{S ⊆ N\{i}} |S|!(n−|S|−1)!/n! · [v(S∪{i}) − v(S)].
// Exponential in n — the very intractability that motivates the paper's
// equal-share rule — so it is capped at 20 players; use ShapleyMonteCarlo
// beyond that.
func (g *Game) Shapley() []float64 {
	if g.n > 20 {
		panic("coalition: exact Shapley limited to 20 players; use ShapleyMonteCarlo")
	}
	phi := make([]float64, g.n)
	if g.n == 0 {
		return phi
	}
	// Precompute |S|!(n-|S|-1)!/n! by subset size.
	fact := make([]float64, g.n+1)
	fact[0] = 1
	for i := 1; i <= g.n; i++ {
		fact[i] = fact[i-1] * float64(i)
	}
	weight := make([]float64, g.n)
	for s := 0; s < g.n; s++ {
		weight[s] = fact[s] * fact[g.n-s-1] / fact[g.n]
	}
	total := uint64(1) << uint(g.n)
	for mask := uint64(0); mask < total; mask++ {
		members := Members(mask)
		vS := g.Value(members)
		size := len(members)
		for i := 0; i < g.n; i++ {
			bit := uint64(1) << uint(i)
			if mask&bit != 0 {
				continue
			}
			withI := Members(mask | bit)
			phi[i] += weight[size] * (g.Value(withI) - vS)
		}
	}
	return phi
}

// ShapleyMonteCarlo estimates the Shapley value by sampling random player
// orders (the classic permutation estimator). samples is the number of
// permutations; the estimator is unbiased with variance O(1/samples).
func (g *Game) ShapleyMonteCarlo(rng *xrand.RNG, samples int) []float64 {
	phi := make([]float64, g.n)
	if g.n == 0 || samples <= 0 {
		return phi
	}
	prefix := make([]int, 0, g.n)
	for s := 0; s < samples; s++ {
		perm := rng.Perm(g.n)
		prefix = prefix[:0]
		prev := 0.0
		for _, i := range perm {
			prefix = append(prefix, i)
			cur := g.Value(prefix)
			phi[i] += cur - prev
			prev = cur
		}
	}
	for i := range phi {
		phi[i] /= float64(samples)
	}
	return phi
}
