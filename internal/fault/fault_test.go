package fault

import (
	"testing"
	"time"
)

// schedule drives n visits round-robin over all points and returns the
// resulting plans.
func schedule(in *Injector, n int) []Plan {
	plans := make([]Plan, 0, n)
	for i := 0; i < n; i++ {
		plans = append(plans, in.Visit(Point(i%int(NumPoints))))
	}
	return plans
}

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Fatal("nil injector reports Enabled")
	}
	if plan := in.Visit(PointSolve); plan.Fired() {
		t.Fatalf("nil injector fired: %+v", plan)
	}
	if st := in.Stats(); st.Visits != 0 || st.Fired != 0 {
		t.Fatalf("nil injector has stats: %+v", st)
	}
	if got := in.String(); got != "fault: disabled" {
		t.Fatalf("nil injector String = %q", got)
	}
}

func TestIdenticalSeedsIdenticalSchedules(t *testing.T) {
	cfg := Config{Seed: 42, Rate: 0.5}
	a := schedule(New(cfg), 4096)
	b := schedule(New(cfg), 4096)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("visit %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	fired := 0
	for _, p := range a {
		if p.Fired() {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("rate 0.5 fired %d/%d times", fired, len(a))
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := schedule(New(Config{Seed: 1, Rate: 0.5}), 512)
	b := schedule(New(Config{Seed: 2, Rate: 0.5}), 512)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

func TestRateOneFiresEverywhere(t *testing.T) {
	in := New(Config{Seed: 7, Rate: 1})
	for i, plan := range schedule(in, 256) {
		if !plan.Fired() {
			t.Fatalf("visit %d did not fire at rate 1", i)
		}
	}
	st := in.Stats()
	if st.Visits != 256 || st.Fired != 256 {
		t.Fatalf("stats = %+v, want 256/256", st)
	}
}

func TestRateZeroNeverFires(t *testing.T) {
	in := New(Config{Seed: 7, Rate: 0})
	if in.Enabled() {
		t.Fatal("rate-0 injector reports Enabled")
	}
	for i, plan := range schedule(in, 256) {
		if plan.Fired() {
			t.Fatalf("visit %d fired at rate 0", i)
		}
	}
	if st := in.Stats(); st.Visits != 256 || st.Fired != 0 {
		t.Fatalf("stats = %+v, want 256 visits 0 fired", st)
	}
}

func TestClassesMatchTheirPoints(t *testing.T) {
	in := New(Config{Seed: 3, Rate: 1})
	for i := 0; i < 512; i++ {
		p := Point(i % int(NumPoints))
		plan := in.Visit(p)
		ok := false
		for _, c := range pointClasses[p] {
			if plan.Class == c {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("point %v fired foreign class %v", p, plan.Class)
		}
	}
}

func TestClassFilterRestrictsFiring(t *testing.T) {
	in := New(Config{Seed: 5, Rate: 1, Classes: []Class{Cancel}})
	// PointSolve can still fire (Cancel lives there) ...
	if plan := in.Visit(PointSolve); plan.Class != Cancel {
		t.Fatalf("PointSolve fired %v, want Cancel", plan.Class)
	}
	// ... but points whose classes are all filtered out never fire.
	for i := 0; i < 64; i++ {
		if plan := in.Visit(PointReputation); plan.Fired() {
			t.Fatalf("PointReputation fired %v with only Cancel enabled", plan.Class)
		}
	}
}

func TestPlanParameterDefaults(t *testing.T) {
	in := New(Config{Seed: 11, Rate: 1, Classes: []Class{Cancel}})
	plan := in.Visit(PointSolve)
	if plan.CancelAfterNodes != DefaultCancelNodes {
		t.Fatalf("CancelAfterNodes = %d, want default %d", plan.CancelAfterNodes, DefaultCancelNodes)
	}
	in = New(Config{Seed: 11, Rate: 1, Classes: []Class{Latency}, Latency: 5 * time.Millisecond})
	if plan := in.Visit(PointSolve); plan.Sleep != 5*time.Millisecond {
		t.Fatalf("Sleep = %v, want 5ms", plan.Sleep)
	}
	in = New(Config{Seed: 11, Rate: 1})
	if plan := in.Visit(PointReputation); plan.MaxIter != DefaultMaxIter {
		t.Fatalf("MaxIter = %d, want default %d", plan.MaxIter, DefaultMaxIter)
	}
}

func TestStatsPerClassSumsToFired(t *testing.T) {
	in := New(Config{Seed: 9, Rate: 0.7})
	schedule(in, 2048)
	st := in.Stats()
	var sum int64
	for _, c := range st.PerClass {
		sum += c
	}
	if sum != st.Fired {
		t.Fatalf("per-class sum %d != fired %d", sum, st.Fired)
	}
	if st.String() == "" {
		t.Fatal("empty Stats.String")
	}
}
