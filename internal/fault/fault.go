package fault

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"gridvo/internal/xrand"
)

// Point identifies a hook site in the solve pipeline. Each layer visits
// exactly one point, so a fault schedule is a deterministic function of
// the injector seed and the sequence of visits.
type Point uint8

const (
	// PointEngine is visited by mechanism.Engine once per coalition
	// evaluation, before the instance is built — the malformed-input
	// faults (empty coalitions, NaN-poisoned costs) fire here.
	PointEngine Point = iota
	// PointSolve is visited by assign.SolveCtx once per IP solve — the
	// mid-branch-and-bound cancellation and artificial-latency faults.
	PointSolve
	// PointReputation is visited by reputation.Global once per power-method
	// solve — the eigenvector non-convergence (iteration-budget
	// exhaustion) fault.
	PointReputation
	// PointTrust is visited by the mechanism loop once per eviction-score
	// computation — the degenerate-input fault that zeroes a trust row.
	PointTrust

	// NumPoints is the number of hook sites.
	NumPoints
)

// String returns the point name.
func (p Point) String() string {
	switch p {
	case PointEngine:
		return "engine"
	case PointSolve:
		return "solve"
	case PointReputation:
		return "reputation"
	case PointTrust:
		return "trust"
	default:
		return fmt.Sprintf("Point(%d)", int(p))
	}
}

// Class is the kind of fault fired at a point.
type Class uint8

const (
	// None means no fault fired at this visit.
	None Class = iota
	// Cancel aborts the branch-and-bound search after a small node count,
	// mimicking a context cancellation mid-solve (PointSolve).
	Cancel
	// Latency sleeps before the solve starts, mimicking a slow or
	// contended solver (PointSolve).
	Latency
	// NonConverge clamps the power iteration's budget so it exhausts
	// before convergence (PointReputation).
	NonConverge
	// ZeroTrustRow removes every outgoing trust edge of one GSP before an
	// eviction-score computation, producing the dangling-row case of
	// eq. (1) (PointTrust).
	ZeroTrustRow
	// PoisonCost sets one cost entry to NaN before the solve, the
	// malformed-matrix input (PointEngine).
	PoisonCost
	// EmptyCoalition replaces the coalition with the empty member set, an
	// input the IP cannot satisfy while tasks remain (PointEngine).
	EmptyCoalition

	// NumClasses is the number of fault classes including None.
	NumClasses
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case None:
		return "none"
	case Cancel:
		return "cancel"
	case Latency:
		return "latency"
	case NonConverge:
		return "non-converge"
	case ZeroTrustRow:
		return "zero-trust-row"
	case PoisonCost:
		return "poison-cost"
	case EmptyCoalition:
		return "empty-coalition"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// pointClasses lists the classes that can fire at each point.
var pointClasses = [NumPoints][]Class{
	PointEngine:     {EmptyCoalition, PoisonCost},
	PointSolve:      {Cancel, Latency},
	PointReputation: {NonConverge},
	PointTrust:      {ZeroTrustRow},
}

// ClassesAt returns the fault classes that can fire at a point.
func ClassesAt(p Point) []Class {
	return append([]Class(nil), pointClasses[p]...)
}

// Plan is the injector's decision for one hook visit. The zero value means
// "no fault": consumers switch on Class and ignore the parameter fields of
// classes they did not receive.
type Plan struct {
	// Class identifies the fault, None when nothing fired.
	Class Class
	// CancelAfterNodes is the node count after which a Cancel fault aborts
	// the search.
	CancelAfterNodes int64
	// Sleep is the artificial delay of a Latency fault.
	Sleep time.Duration
	// MaxIter is the clamped power-iteration budget of a NonConverge fault.
	MaxIter int
	// Pick is a raw random value consumers reduce to a choice (which trust
	// row to zero, which cost entry to poison) so the injector needs no
	// knowledge of instance shapes.
	Pick uint64
}

// Fired reports whether the visit produced a fault.
func (p Plan) Fired() bool { return p.Class != None }

// Defaults substituted for zero Config fields.
const (
	// DefaultCancelNodes is small enough that the search is genuinely cut
	// short on any non-trivial instance, large enough that the incumbent
	// machinery has run.
	DefaultCancelNodes = 64
	// DefaultLatency keeps injected delays visible in stats without
	// dominating test wall time.
	DefaultLatency = 200 * time.Microsecond
	// DefaultMaxIter guarantees the clamped power iteration cannot reach
	// the default epsilon on any non-trivial graph.
	DefaultMaxIter = 1
)

// Config parameterizes an Injector.
type Config struct {
	// Seed drives the fault schedule; identical seeds over identical visit
	// sequences reproduce identical schedules.
	Seed uint64
	// Rate is the per-visit firing probability in [0,1].
	Rate float64
	// Classes restricts which fault classes may fire; empty enables all.
	Classes []Class
	// CancelNodes overrides DefaultCancelNodes for Cancel plans.
	CancelNodes int64
	// Latency overrides DefaultLatency for Latency plans.
	Latency time.Duration
	// MaxIter overrides DefaultMaxIter for NonConverge plans.
	MaxIter int
}

// Stats is a snapshot of injector activity.
type Stats struct {
	// Visits counts hook visits (fired or not).
	Visits int64
	// Fired counts visits that produced a fault.
	Fired int64
	// PerClass counts fired faults by class (index fault.Class).
	PerClass [NumClasses]int64
}

// String renders the snapshot for logs and chaos reports.
func (s Stats) String() string {
	var parts []string
	for c := Class(1); c < NumClasses; c++ {
		if s.PerClass[c] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", c, s.PerClass[c]))
		}
	}
	sort.Strings(parts)
	detail := ""
	if len(parts) > 0 {
		detail = " (" + strings.Join(parts, ", ") + ")"
	}
	return fmt.Sprintf("%d/%d visits fired%s", s.Fired, s.Visits, detail)
}

// Injector is a seedable, deterministic fault source. Every hook site calls
// Visit once per unit of work; the injector decides from its PRNG whether a
// fault fires there and with what parameters. All methods are safe on a nil
// receiver — a nil *Injector is the no-op default, so the hot path pays one
// pointer check when injection is disabled.
//
// The schedule is a pure function of Config.Seed and the sequence of Visit
// calls, so it is reproducible only when visits are sequenced
// deterministically (the chaos harness runs sweeps sequentially for exactly
// this reason). Visit itself is safe for concurrent use.
type Injector struct {
	mu          sync.Mutex
	rng         *xrand.RNG
	rate        float64
	cancelNodes int64
	latency     time.Duration
	maxIter     int
	// classes[p] is the enabled subset of pointClasses[p], precomputed so
	// Visit does no filtering.
	classes [NumPoints][]Class
	stats   Stats
}

// New builds an injector from the config, substituting defaults for zero
// parameter fields. A rate of 0 yields an injector that visits but never
// fires — useful for measuring hook overhead.
func New(cfg Config) *Injector {
	in := &Injector{
		rng:         xrand.New(cfg.Seed).Split("fault"),
		rate:        cfg.Rate,
		cancelNodes: cfg.CancelNodes,
		latency:     cfg.Latency,
		maxIter:     cfg.MaxIter,
	}
	if in.cancelNodes <= 0 {
		in.cancelNodes = DefaultCancelNodes
	}
	if in.latency <= 0 {
		in.latency = DefaultLatency
	}
	if in.maxIter <= 0 {
		in.maxIter = DefaultMaxIter
	}
	enabled := map[Class]bool{}
	for _, c := range cfg.Classes {
		enabled[c] = true
	}
	for p := Point(0); p < NumPoints; p++ {
		for _, c := range pointClasses[p] {
			if len(cfg.Classes) == 0 || enabled[c] {
				in.classes[p] = append(in.classes[p], c)
			}
		}
	}
	return in
}

// Enabled reports whether the injector can fire at all.
func (in *Injector) Enabled() bool { return in != nil && in.rate > 0 }

// Visit draws the fault decision for one unit of work at a hook site. On a
// nil receiver it returns the zero Plan without drawing anything.
//
// Every visit consumes exactly one decision draw whether or not it fires,
// so the schedule at later visits does not depend on which classes earlier
// visits had enabled.
func (in *Injector) Visit(p Point) Plan {
	if in == nil {
		return Plan{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Visits++
	u := in.rng.Float64()
	classes := in.classes[p]
	if len(classes) == 0 || u >= in.rate {
		return Plan{}
	}
	c := classes[0]
	if len(classes) > 1 {
		c = classes[in.rng.IntN(len(classes))]
	}
	plan := Plan{Class: c, Pick: in.rng.Uint64()}
	switch c {
	case Cancel:
		plan.CancelAfterNodes = in.cancelNodes
	case Latency:
		plan.Sleep = in.latency
	case NonConverge:
		plan.MaxIter = in.maxIter
	}
	in.stats.Fired++
	in.stats.PerClass[c]++
	return plan
}

// Stats returns a snapshot of injector activity (zero on a nil receiver).
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// String summarizes the injector's activity.
func (in *Injector) String() string {
	if in == nil {
		return "fault: disabled"
	}
	return "fault: " + in.Stats().String()
}
