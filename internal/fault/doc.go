// Package fault is the deterministic fault-injection layer of the solve
// pipeline: a seedable PRNG-driven injector that can fire context
// cancellations mid-branch-and-bound, artificial solve latency, power-method
// iteration-budget exhaustion, and malformed inputs (zero trust rows,
// NaN-poisoned cost matrices, empty coalitions) at fixed hook points in
// assign, reputation, and mechanism.
//
// The contract is reproducibility: a fault schedule is a pure function of
// the injector seed and the sequence of hook visits, so a chaos run with a
// fixed seed produces bit-identical faults — and, because every degradation
// path is deterministic too, bit-identical results — across repetitions.
// Hooks take a *Injector whose nil value is a no-op, so production paths
// pay a single pointer check when injection is disabled.
//
// See DESIGN.md §11 for the fault model and the degradation ladder each
// consumer implements (exact → warm-seed → heuristic → infeasible).
package fault
