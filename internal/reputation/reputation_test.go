package reputation

import (
	"math"
	"testing"
	"testing/quick"

	"gridvo/internal/matrix"
	"gridvo/internal/trust"
	"gridvo/internal/xrand"
)

func ring(n int) *trust.Graph {
	g := trust.NewGraph(n)
	for i := 0; i < n; i++ {
		g.SetTrust(i, (i+1)%n, 1)
	}
	return g
}

func TestGlobalEmptyGraph(t *testing.T) {
	if _, _, err := Global(trust.NewGraph(0), DefaultOptions()); err != ErrEmptyGraph {
		t.Fatalf("err = %v, want ErrEmptyGraph", err)
	}
}

func TestGlobalSingleton(t *testing.T) {
	x, diag, err := Global(trust.NewGraph(1), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 1 || math.Abs(x[0]-1) > 1e-12 {
		t.Fatalf("singleton reputation = %v, want [1]", x)
	}
	if !diag.Converged {
		t.Fatal("singleton did not converge")
	}
}

func TestGlobalRingIsUniform(t *testing.T) {
	// In a symmetric ring every GSP is structurally identical, so the
	// principal eigenvector is uniform.
	x, diag, err := Global(ring(6), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Converged {
		t.Fatal("ring did not converge")
	}
	for _, v := range x {
		if math.Abs(v-1.0/6) > 1e-6 {
			t.Fatalf("ring reputation = %v, want uniform", x)
		}
	}
}

func TestGlobalIsLeftEigenvector(t *testing.T) {
	// The converged vector must satisfy Aᵀx ∝ x (eq. 6).
	rng := xrand.New(3)
	for trial := 0; trial < 25; trial++ {
		g := trust.ErdosRenyi(rng.SplitN("g", trial), 10, 0.4)
		x, diag, err := Global(g, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !diag.Converged {
			continue // reducible pathological case; other tests cover it
		}
		a, _ := g.Normalized(trust.NormalizeOptions{DanglingUniform: true})
		ax := a.TMulVec(x)
		matrix.VecNormalizeL1(ax)
		if !matrix.VecEqual(ax, x, 1e-6) {
			t.Fatalf("trial %d: Aᵀx != λx:\nx  = %v\nAᵀx = %v", trial, x, ax)
		}
	}
}

func TestGlobalNonNegativeSumsToOne(t *testing.T) {
	rng := xrand.New(5)
	f := func(seed uint32) bool {
		g := trust.ErdosRenyi(xrand.New(uint64(seed)), 8+rng.IntN(8), 0.2)
		x, _, err := Global(g, DefaultOptions())
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range x {
			if v < -1e-12 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHighlyTrustedNodeWins(t *testing.T) {
	// A star where everyone trusts node 0 strongly and others weakly:
	// node 0 must have the highest reputation.
	g := trust.NewGraph(5)
	for i := 1; i < 5; i++ {
		g.SetTrust(i, 0, 1.0)
		g.SetTrust(i, (i%4)+1, 0.1) // weak side edges among the leaves
		g.SetTrust(0, i, 0.25)
	}
	x, _, err := Global(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if matrix.ArgMax(x) != 0 {
		t.Fatalf("reputation = %v; node 0 should dominate", x)
	}
}

func TestUntrustedNodeScoresLowest(t *testing.T) {
	// Node 3 receives no trust at all; with dangling-uniform fix it still
	// gets a trickle from dangling rows but must rank strictly below the
	// trusted core when the core is strongly connected.
	g := ring(3) // nodes 0..2 strongly connected
	full := trust.NewGraph(4)
	for _, e := range g.Edges() {
		full.SetTrust(e.From, e.To, e.Weight)
	}
	full.SetTrust(3, 0, 1) // node 3 trusts the core, nobody trusts it
	x, _, err := Global(full, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if matrix.ArgMin(x) != 3 {
		t.Fatalf("reputation = %v; node 3 should be lowest", x)
	}
}

func TestStopRules(t *testing.T) {
	g := trust.ErdosRenyi(xrand.New(9), 12, 0.3)
	for _, rule := range []StopRule{StopNormDiff, StopAvgRelErr} {
		opts := DefaultOptions()
		opts.Stop = rule
		x, diag, err := Global(g, opts)
		if err != nil {
			t.Fatalf("%v: %v", rule, err)
		}
		if !diag.Converged {
			t.Fatalf("%v did not converge", rule)
		}
		if math.Abs(matrix.VecSum(x)-1) > 1e-9 {
			t.Fatalf("%v: not normalized", rule)
		}
	}
	if StopNormDiff.String() != "norm-diff" || StopAvgRelErr.String() != "avg-rel-err" {
		t.Fatal("StopRule.String wrong")
	}
	if StopRule(99).String() == "" {
		t.Fatal("unknown StopRule has empty String")
	}
}

func TestMaxIterRespected(t *testing.T) {
	g := trust.ErdosRenyi(xrand.New(10), 16, 0.2)
	opts := DefaultOptions()
	opts.MaxIter = 2
	opts.Epsilon = 1e-300 // unreachable
	_, diag, err := Global(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Converged || diag.Iterations != 2 {
		t.Fatalf("diag = %+v, want 2 iterations, not converged", diag)
	}
}

func TestDampingValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("damping > 1 did not panic")
		}
	}()
	opts := DefaultOptions()
	opts.Damping = 1.5
	_, _, _ = Global(ring(3), opts)
}

func TestDampingKeepsUniformOnRing(t *testing.T) {
	opts := DefaultOptions()
	opts.Damping = 0.15
	x, diag, err := Global(ring(5), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Converged {
		t.Fatal("damped ring did not converge")
	}
	for _, v := range x {
		if math.Abs(v-0.2) > 1e-6 {
			t.Fatalf("damped ring reputation = %v, want uniform", x)
		}
	}
}

func TestDanglingDiagnostics(t *testing.T) {
	g := trust.NewGraph(3)
	g.SetTrust(0, 1, 1) // nodes 1 and 2 have no outgoing trust
	_, diag, err := Global(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.Dangling) != 2 {
		t.Fatalf("dangling = %v, want two entries", diag.Dangling)
	}
}

func TestSubstochasticModeStillNormalized(t *testing.T) {
	g := trust.NewGraph(3)
	g.SetTrust(0, 1, 1)
	g.SetTrust(1, 0, 1)
	// Node 2 dangles; with DanglingUniform=false the matrix is
	// substochastic and the iterate must be renormalized to survive.
	opts := Options{DanglingUniform: false}
	x, _, err := Global(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(matrix.VecSum(x)-1) > 1e-9 {
		t.Fatalf("substochastic iterate not renormalized: %v", x)
	}
}

func TestPowerIterateNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-square PowerIterate did not panic")
		}
	}()
	PowerIterate(matrix.NewDense(2, 3), DefaultOptions())
}

func TestPowerIterateEmpty(t *testing.T) {
	x, diag := PowerIterate(matrix.NewDense(0, 0), DefaultOptions())
	if x != nil || !diag.Converged {
		t.Fatal("empty matrix should converge vacuously")
	}
}

func TestAverage(t *testing.T) {
	if Average(nil) != 0 {
		t.Fatal("Average(nil) != 0")
	}
	if got := Average([]float64{0.2, 0.4}); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("Average = %v", got)
	}
}

func TestAverageOf(t *testing.T) {
	x := []float64{0.1, 0.2, 0.3, 0.4}
	if got := AverageOf(x, []int{1, 3}); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("AverageOf = %v", got)
	}
	if AverageOf(x, nil) != 0 {
		t.Fatal("AverageOf empty != 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range AverageOf did not panic")
		}
	}()
	AverageOf(x, []int{7})
}

func TestEvictionInvariance(t *testing.T) {
	// Recomputing reputation on the subgraph after evicting the lowest-
	// reputation GSP (as TVOF does) must produce a valid distribution.
	g := trust.ErdosRenyi(xrand.New(21), 16, 0.3)
	for g.N() > 1 {
		x, _, err := Global(g, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		lowest := matrix.ArgMin(x)
		g, _ = g.Without(lowest)
		x2, _, err := Global(g, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(x2) != g.N() {
			t.Fatal("reputation length mismatch after eviction")
		}
		if math.Abs(matrix.VecSum(x2)-1) > 1e-9 {
			t.Fatalf("post-eviction reputation not normalized: %v", x2)
		}
	}
}

// TestWarmStartSameFixedPoint verifies a warm-started iteration converges
// to the same vector as a cold one and reports Diagnostics.Warm.
func TestWarmStartSameFixedPoint(t *testing.T) {
	rng := xrand.New(17)
	for trial := 0; trial < 25; trial++ {
		g := trust.ErdosRenyi(rng.SplitN("g", trial), 12, 0.4)
		cold, coldDiag, err := Global(g, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !coldDiag.Converged {
			continue
		}
		if coldDiag.Warm {
			t.Fatalf("trial %d: cold run flagged warm", trial)
		}
		// Start near — but not at — the fixed point, as the mechanism loop
		// does when it carries the previous iteration's vector forward.
		init := append([]float64(nil), cold...)
		for i := range init {
			init[i] *= 1 + 0.01*rng.Float64()
		}
		opts := DefaultOptions()
		opts.InitialVector = init
		warm, warmDiag, err := Global(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !warmDiag.Warm || !warmDiag.Converged {
			t.Fatalf("trial %d: warm diagnostics off: %+v", trial, warmDiag)
		}
		if !matrix.VecEqual(warm, cold, 1e-6) {
			t.Fatalf("trial %d: warm fixed point differs:\ncold = %v\nwarm = %v", trial, cold, warm)
		}
		if warmDiag.Iterations > coldDiag.Iterations {
			t.Fatalf("trial %d: warm start took more iterations (%d) than cold (%d)",
				trial, warmDiag.Iterations, coldDiag.Iterations)
		}
	}
}

// TestWarmStartExactVectorConvergesImmediately seeds with the converged
// vector itself: one multiply step must confirm convergence.
func TestWarmStartExactVectorConvergesImmediately(t *testing.T) {
	g := ring(8)
	cold, _, err := Global(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.InitialVector = cold
	_, diag, err := Global(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Converged || diag.Iterations != 1 {
		t.Fatalf("exact warm start diagnostics: %+v, want converged in 1 iteration", diag)
	}
}

// TestWarmStartInvalidFallsBackToUniform checks every malformed hint is
// ignored: the run behaves exactly like a cold start.
func TestWarmStartInvalidFallsBackToUniform(t *testing.T) {
	g := ErdosRenyiFixture()
	cold, coldDiag, err := Global(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	bad := map[string][]float64{
		"wrongLen": make([]float64, n-1),
		"negative": negAt(n, 2),
		"nan":      withVal(n, 1, math.NaN()),
		"inf":      withVal(n, 0, math.Inf(1)),
		"zeroSum":  make([]float64, n),
	}
	for name, init := range bad {
		opts := DefaultOptions()
		opts.InitialVector = init
		x, diag, err := Global(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if diag.Warm {
			t.Fatalf("%s: invalid hint flagged warm", name)
		}
		if diag.Iterations != coldDiag.Iterations || !matrix.VecEqual(x, cold, 0) {
			t.Fatalf("%s: invalid hint changed the run: %+v vs cold %+v", name, diag, coldDiag)
		}
	}
}

// TestWarmStartDoesNotModifyInput verifies the hint slice is left intact
// (the mechanism loop reuses its buffer across iterations).
func TestWarmStartDoesNotModifyInput(t *testing.T) {
	g := ring(5)
	init := []float64{5, 1, 1, 1, 2} // deliberately unnormalized
	orig := append([]float64(nil), init...)
	opts := DefaultOptions()
	opts.InitialVector = init
	if _, _, err := Global(g, opts); err != nil {
		t.Fatal(err)
	}
	for i := range init {
		if init[i] != orig[i] {
			t.Fatalf("InitialVector modified at %d: %v vs %v", i, init, orig)
		}
	}
}

func ErdosRenyiFixture() *trust.Graph {
	return trust.ErdosRenyi(xrand.New(99), 10, 0.5)
}

func negAt(n, i int) []float64 {
	v := uniformVec(n)
	v[i] = -0.1
	return v
}

func withVal(n, i int, x float64) []float64 {
	v := uniformVec(n)
	v[i] = x
	return v
}

func uniformVec(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / float64(n)
	}
	return v
}
