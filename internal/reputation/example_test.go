package reputation_test

import (
	"fmt"

	"gridvo/internal/reputation"
	"gridvo/internal/trust"
)

// ExampleGlobal computes global reputation on a tiny asymmetric trust
// graph: everyone trusts node 0 heavily, so it dominates the eigenvector.
func ExampleGlobal() {
	g := trust.NewGraph(3)
	g.SetTrust(1, 0, 1.0)
	g.SetTrust(2, 0, 1.0)
	g.SetTrust(0, 1, 0.5)
	g.SetTrust(0, 2, 0.5)
	g.SetTrust(1, 2, 0.2)
	g.SetTrust(2, 1, 0.2)

	x, diag, err := reputation.Global(g, reputation.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("converged: %v\n", diag.Converged)
	fmt.Printf("highest reputation: G%d\n", argmax(x))
	fmt.Printf("x sums to one: %v\n", abs(sum(x)-1) < 1e-9)
	// Output:
	// converged: true
	// highest reputation: G0
	// x sums to one: true
}

func argmax(x []float64) int {
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}

func sum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
