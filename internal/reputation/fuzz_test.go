package reputation

import (
	"encoding/binary"
	"math"
	"testing"

	"gridvo/internal/matrix"
	"gridvo/internal/trust"
)

// FuzzTrustNormalize feeds arbitrary bit patterns — including NaN, ±Inf,
// negatives, and zero rows — through the trust-matrix boundary. The
// contract under fuzzing: trust.FromMatrix either rejects the matrix with
// an explicit error or accepts it, and an accepted matrix normalizes to a
// row-stochastic matrix (eq. 1) and yields a finite, L1-normalized global
// reputation vector (eq. 6). No input may panic or produce NaN.
func FuzzTrustNormalize(f *testing.F) {
	f.Add(uint8(3), []byte{})
	f.Add(uint8(1), []byte{0, 0, 0, 0, 0, 0, 0, 0})
	// One NaN weight and one negative weight as seed corpus.
	nan := make([]byte, 8)
	binary.LittleEndian.PutUint64(nan, math.Float64bits(math.NaN()))
	f.Add(uint8(2), nan)
	neg := make([]byte, 8)
	binary.LittleEndian.PutUint64(neg, math.Float64bits(-1.5))
	f.Add(uint8(2), neg)
	// A healthy ring.
	ring := make([]byte, 0, 9*8)
	for _, v := range []float64{0, 0.8, 0, 0, 0, 0.6, 0.4, 0, 0} {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		ring = append(ring, b[:]...)
	}
	f.Add(uint8(3), ring)

	f.Fuzz(func(t *testing.T, nRaw uint8, data []byte) {
		n := int(nRaw%8) + 1 // 1..8 GSPs keeps every iteration cheap
		w := matrix.NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				idx := (i*n + j) * 8
				var v float64
				if idx+8 <= len(data) {
					v = math.Float64frombits(binary.LittleEndian.Uint64(data[idx : idx+8]))
				}
				w.Set(i, j, v)
			}
		}

		g, err := trust.FromMatrix(w)
		if err != nil {
			return // explicit rejection is the correct outcome for bad bits
		}
		a, dangling := g.Normalized(trust.NormalizeOptions{DanglingUniform: true})
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				v := a.At(i, j)
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Fatalf("normalized entry (%d,%d) = %v from accepted matrix", i, j, v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("row %d sums to %v, want 1 (dangling=%v)", i, sum, dangling)
			}
		}

		scores, _, err := Global(g, Options{MaxIter: 500, DanglingUniform: true})
		if err != nil {
			return // explicit rejection is acceptable; silent NaN is not
		}
		l1 := 0.0
		for i, x := range scores {
			if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
				t.Fatalf("score[%d] = %v from accepted matrix", i, x)
			}
			l1 += x
		}
		if math.Abs(l1-1) > 1e-6 {
			t.Fatalf("global reputation not L1-normalized: sum %v", l1)
		}

		// Format parity: normalizing the same weights through the CSR path
		// must agree with the dense path entry for entry, and the full
		// solve must agree bit for bit. Graph construction already dropped
		// explicit zeros, so both representations hold identical nonzeros.
		gd, gc := g.Clone(), g.Clone()
		gd.SetFormat(trust.FormatDense)
		gc.SetFormat(trust.FormatCSR)
		ad, zd := gd.Normalized(trust.NormalizeOptions{DanglingUniform: true})
		ac, zc := gc.Normalized(trust.NormalizeOptions{DanglingUniform: true})
		if len(zd) != len(zc) {
			t.Fatalf("dangling lists differ: %v vs %v", zd, zc)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Float64bits(ad.At(i, j)) != math.Float64bits(ac.At(i, j)) {
					t.Fatalf("normalized (%d,%d): dense %v != csr %v", i, j, ad.At(i, j), ac.At(i, j))
				}
			}
		}
		sd, dd, errD := Global(gd, Options{MaxIter: 500, DanglingUniform: true})
		sc, dc, errC := Global(gc, Options{MaxIter: 500, DanglingUniform: true})
		if (errD == nil) != (errC == nil) {
			t.Fatalf("format-dependent error: dense=%v csr=%v", errD, errC)
		}
		if errD == nil {
			if dd.Iterations != dc.Iterations || dd.Converged != dc.Converged ||
				math.Float64bits(dd.Delta) != math.Float64bits(dc.Delta) {
				t.Fatalf("diagnostics differ: dense %+v csr %+v", dd, dc)
			}
			for i := range sd {
				if math.Float64bits(sd[i]) != math.Float64bits(sc[i]) {
					t.Fatalf("score[%d]: dense %v != csr %v", i, sd[i], sc[i])
				}
			}
		}
	})
}
