// Package reputation computes global reputation scores for GSPs from a
// trust graph, implementing Section II-B and Algorithm 2 of the paper.
//
// The global reputation vector x is the left principal eigenvector of the
// normalized trust matrix A (eq. 6: λx = Aᵀx), found with the power method:
// start from the uniform vector x⁰ᵢ = 1/|C| and iterate x^{q+1} = Aᵀ x^q
// until successive iterates differ by less than ε. Intuitively, a GSP has
// high reputation to the extent that GSPs who themselves have high
// reputation place trust in it — eigenvector centrality on the trust graph.
//
// Besides the paper's power method, the package provides the classic
// centrality measures the related-work section surveys (degree, closeness,
// betweenness, PageRank, and an EigenTrust-style variant), which the bench
// harness uses for eviction-rule ablations.
package reputation
