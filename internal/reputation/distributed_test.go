package reputation

import (
	"math"
	"testing"

	"gridvo/internal/matrix"
	"gridvo/internal/trust"
	"gridvo/internal/xrand"
)

func TestDistributedMatchesCentralized(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		g := trust.ErdosRenyi(xrand.New(uint64(trial+1)), 12, 0.3)
		cx, cd, err := Global(g, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		dx, dd, err := DistributedGlobal(g, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if cd.Converged != dd.Converged {
			t.Fatalf("trial %d: convergence mismatch", trial)
		}
		if !matrix.VecEqual(cx, dx, 1e-12) {
			t.Fatalf("trial %d: distributed %v != centralized %v", trial, dx, cx)
		}
		if cd.Iterations != dd.Iterations {
			t.Fatalf("trial %d: rounds %d != iterations %d", trial, dd.Iterations, cd.Iterations)
		}
	}
}

func TestDistributedDeterministicAcrossRuns(t *testing.T) {
	g := trust.ErdosRenyi(xrand.New(77), 16, 0.25)
	a, _, err := DistributedGlobal(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		b, _, err := DistributedGlobal(g, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("run %d: bit-level nondeterminism at node %d", run, i)
			}
		}
	}
}

func TestDistributedEmptyGraph(t *testing.T) {
	if _, _, err := DistributedGlobal(trust.NewGraph(0), DefaultOptions()); err != ErrEmptyGraph {
		t.Fatalf("err = %v", err)
	}
}

func TestDistributedRejectsDamping(t *testing.T) {
	opts := DefaultOptions()
	opts.Damping = 0.15
	if _, _, err := DistributedGlobal(trust.NewGraph(2), opts); err == nil {
		t.Fatal("damping accepted by the distributed protocol")
	}
}

func TestDistributedStopRules(t *testing.T) {
	g := trust.ErdosRenyi(xrand.New(5), 10, 0.4)
	for _, rule := range []StopRule{StopNormDiff, StopAvgRelErr} {
		opts := DefaultOptions()
		opts.Stop = rule
		x, diag, err := DistributedGlobal(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !diag.Converged {
			t.Fatalf("%v did not converge", rule)
		}
		if math.Abs(matrix.VecSum(x)-1) > 1e-9 {
			t.Fatalf("%v: not normalized", rule)
		}
	}
}
