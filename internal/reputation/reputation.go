package reputation

import (
	"errors"
	"fmt"
	"math"

	"gridvo/internal/fault"
	"gridvo/internal/matrix"
	"gridvo/internal/trust"
)

// StopRule selects the convergence test of the power iteration.
type StopRule int

const (
	// StopNormDiff stops when ‖x^{q+1} − x^q‖₂ < ε — the rule in the
	// pseudocode of Algorithm 2 (line 6–7).
	StopNormDiff StopRule = iota
	// StopAvgRelErr stops when the average relative error between
	// x^{q+1} and x^q is below ε — the rule described in the paper's
	// prose ("the average relative error ... smaller than the given
	// threshold").
	StopAvgRelErr
)

// String returns the rule name for logs and experiment metadata.
func (s StopRule) String() string {
	switch s {
	case StopNormDiff:
		return "norm-diff"
	case StopAvgRelErr:
		return "avg-rel-err"
	default:
		return fmt.Sprintf("StopRule(%d)", int(s))
	}
}

// Options parameterize the power method.
type Options struct {
	// Epsilon is the convergence threshold ε. Zero selects DefaultEpsilon.
	Epsilon float64
	// MaxIter bounds the number of iterations; zero selects
	// DefaultMaxIter. If the bound is hit, Global returns the last
	// iterate with Diagnostics.Converged == false and a nil error —
	// mechanisms keep running with the best available scores, matching
	// how a real deployment would behave.
	MaxIter int
	// Stop selects the convergence test; the zero value is StopNormDiff,
	// matching the pseudocode.
	Stop StopRule
	// Damping, when in (0,1), mixes a uniform teleport into every step:
	// x ← (1−d)·Aᵀx + d·(1/n). The paper's method is the undamped d = 0;
	// damping is provided for ablations on sparse graphs where the
	// undamped chain is reducible and mass drains into closed subsets.
	Damping float64
	// DanglingUniform selects how eq. (1) treats GSPs without outgoing
	// trust; see trust.NormalizeOptions. The mechanism default is true.
	DanglingUniform bool
	// InitialVector, when non-nil and of matching dimension, seeds the
	// power iteration instead of the uniform vector. The mechanism loop
	// passes the previous iteration's converged vector restricted to the
	// surviving members, which starts the iteration near the new fixed
	// point and typically converges in a fraction of the cold iteration
	// count (EigenTrust-style warm starting). The vector must be
	// non-negative with positive sum; it is L1-renormalized defensively
	// and never modified or retained. Invalid or mismatched vectors fall
	// back to the uniform start.
	InitialVector []float64
	// Inject, when non-nil, is the deterministic fault injector visited
	// once per Global call (fault.PointReputation): a NonConverge plan
	// clamps MaxIter so the iteration exhausts its budget and returns the
	// last iterate with Converged == false — the graceful path MaxIter
	// exhaustion already takes, now exercisable on demand. The nil default
	// costs a single pointer check.
	Inject *fault.Injector
}

// IsZero reports whether every option holds its zero value. The mechanism
// layers use it to substitute defaults (Options carries a slice, so the
// struct is not comparable with ==).
func (o *Options) IsZero() bool {
	return o.Epsilon == 0 && o.MaxIter == 0 && o.Stop == StopNormDiff &&
		o.Damping == 0 && !o.DanglingUniform && o.InitialVector == nil &&
		o.Inject == nil
}

// DefaultEpsilon is the convergence threshold used when Options.Epsilon is
// zero. Reputation differences far below this never change an eviction
// decision among 16 GSPs.
const DefaultEpsilon = 1e-9

// DefaultMaxIter bounds the power iteration when Options.MaxIter is zero.
const DefaultMaxIter = 10000

// DefaultOptions returns the configuration the TVOF mechanism uses: the
// pseudocode stopping rule, uniform dangling fix, no damping.
func DefaultOptions() Options {
	return Options{DanglingUniform: true}
}

// Diagnostics report how the power iteration behaved.
type Diagnostics struct {
	Iterations int     // number of multiply steps performed
	Delta      float64 // final value of the convergence metric
	Converged  bool    // whether Delta < ε within MaxIter
	Warm       bool    // whether the iteration started from Options.InitialVector
	Dangling   []int   // GSPs with no outgoing trust (patched per options)
}

// ErrEmptyGraph is returned when reputation is requested for a graph with
// no GSPs.
var ErrEmptyGraph = errors.New("reputation: empty trust graph")

// Global computes the global reputation vector of all GSPs in g — the
// left principal eigenvector of the normalized trust matrix — using the
// power method of Algorithm 2. The returned vector is non-negative and
// L1-normalized (it sums to 1 unless the graph has no trust mass at all).
func Global(g *trust.Graph, opts Options) ([]float64, Diagnostics, error) {
	n := g.N()
	if n == 0 {
		return nil, Diagnostics{}, ErrEmptyGraph
	}
	// Fault hook: a NonConverge plan clamps the iteration budget, forcing
	// the exhaustion path (last iterate, Converged == false, nil error).
	if plan := opts.Inject.Visit(fault.PointReputation); plan.Class == fault.NonConverge {
		opts.MaxIter = plan.MaxIter
	}
	a, dangling := g.Normalized(trust.NormalizeOptions{DanglingUniform: opts.DanglingUniform})
	x, diag := PowerIterate(a, opts)
	diag.Dangling = dangling
	return x, diag, nil
}

// PowerIterate runs the power method x^{q+1} = Aᵀ x^q on an already
// normalized matrix, renormalizing the iterate to unit L1 norm each step
// (A may be substochastic when dangling rows were kept zero; without
// renormalization the iterate would decay in magnitude while keeping the
// same direction). The matrix must be square. Any matrix.Matrix works;
// with a CSR each step is O(nnz), and the Dense and CSR representations of
// the same values produce bitwise-identical iterates.
//
//gridvolint:ignore ctxthread bounded by Options.MaxIter; cancellation is enforced per-solve by mechanism.Engine
func PowerIterate(a matrix.Matrix, opts Options) ([]float64, Diagnostics) {
	if a.Rows() != a.Cols() {
		panic(fmt.Sprintf("reputation: PowerIterate on %dx%d matrix", a.Rows(), a.Cols()))
	}
	n := a.Rows()
	if n == 0 {
		return nil, Diagnostics{Converged: true}
	}
	eps := opts.Epsilon
	if eps == 0 {
		eps = DefaultEpsilon
	}
	maxIter := opts.MaxIter
	if maxIter == 0 {
		maxIter = DefaultMaxIter
	}
	if opts.Damping < 0 || opts.Damping >= 1 {
		if opts.Damping != 0 {
			panic(fmt.Sprintf("reputation: damping %v outside [0,1)", opts.Damping))
		}
	}

	x, warm := startVector(n, opts.InitialVector)
	var diag Diagnostics
	diag.Warm = warm
	for q := 0; q < maxIter; q++ {
		next := a.TMulVec(x)
		if opts.Damping > 0 {
			d := opts.Damping
			u := d / float64(n)
			for i := range next {
				next[i] = (1-d)*next[i] + u
			}
		}
		matrix.VecNormalizeL1(next)
		var delta float64
		switch opts.Stop {
		case StopAvgRelErr:
			delta = matrix.AvgRelErr(next, x)
		default:
			delta = matrix.VecDiffNormL2(next, x)
		}
		x = next
		diag.Iterations = q + 1
		diag.Delta = delta
		if delta < eps {
			diag.Converged = true
			break
		}
	}
	return x, diag
}

// startVector returns the power iteration's starting point: the L1
// normalization of a valid warm-start vector, else the uniform vector. A
// warm start must match the dimension and be non-negative, finite, and of
// positive sum — anything else silently falls back to the cold start so a
// stale hint can degrade performance but never correctness.
func startVector(n int, init []float64) ([]float64, bool) {
	if len(init) != n {
		return matrix.Uniform(n), false
	}
	sum := 0.0
	for _, v := range init {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return matrix.Uniform(n), false
		}
		sum += v
	}
	if sum <= 0 || math.IsInf(sum, 0) {
		return matrix.Uniform(n), false
	}
	x := make([]float64, n)
	for i, v := range init {
		x[i] = v / sum
	}
	return x, true
}

// Average returns the average global reputation x̄(C) of a set of GSPs
// given their reputation scores (eq. 7). It returns 0 for an empty vector.
func Average(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return matrix.VecSum(x) / float64(len(x))
}

// AverageOf returns the average reputation of the subset idx of a full
// reputation vector — x̄ over a candidate VO using globally computed
// scores. It panics on out-of-range indices.
func AverageOf(x []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	s := 0.0
	for _, i := range idx {
		if i < 0 || i >= len(x) {
			panic(fmt.Sprintf("reputation: AverageOf index %d out of range [0,%d)", i, len(x)))
		}
		s += x[i]
	}
	return s / float64(len(idx))
}
