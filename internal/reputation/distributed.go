package reputation

import (
	"fmt"
	"sort"
	"sync"

	"gridvo/internal/matrix"
	"gridvo/internal/trust"
)

// Distributed power method: the paper's mechanism is run by a trusted
// central party, but its related work surveys distributed reputation
// computation (Avrachenkov et al.'s survey, QGrid, EigenTrust). This file
// provides a decentralized execution of Algorithm 2: one worker goroutine
// per GSP, no shared trust matrix — each node knows only its outgoing
// trust (its normalized row) and, per synchronous round, sends each
// neighbour its weighted score share and folds the shares it receives
// (eq. 4: x_j^{q+1} = Σ_i a_ij · x_i^q).
//
// Floating-point reproducibility across schedules is preserved by sorting
// each node's inbox by sender before summing — the order messages arrive
// in never changes the result, so DistributedGlobal agrees with the
// centralized Global bit-for-bit round by round (both sum in ascending
// sender order).

// message is one round's share from a sender node.
type message struct {
	from  int
	share float64
}

// outEdge is one entry of a node's normalized outgoing row.
type outEdge struct {
	to int
	a  float64
}

// DistributedGlobal computes the global reputation vector with the
// decentralized protocol above. It returns the same vector as Global
// (within floating-point tolerance) and diagnostics whose Iterations
// counts protocol rounds.
//
//gridvolint:ignore ctxthread bounded by Options.MaxIter; cancellation is enforced per-solve by mechanism.Engine
func DistributedGlobal(g *trust.Graph, opts Options) ([]float64, Diagnostics, error) {
	n := g.N()
	if n == 0 {
		return nil, Diagnostics{}, ErrEmptyGraph
	}
	eps := opts.Epsilon
	if eps == 0 {
		eps = DefaultEpsilon
	}
	maxIter := opts.MaxIter
	if maxIter == 0 {
		maxIter = DefaultMaxIter
	}
	if opts.Damping != 0 {
		return nil, Diagnostics{}, fmt.Errorf("reputation: distributed protocol does not implement damping")
	}

	// Each node's local knowledge: its normalized outgoing row, held
	// sparsely (only the neighbours it actually sends shares to). Works for
	// both matrix formats and keeps per-node state O(out-degree).
	a, dangling := g.Normalized(trust.NormalizeOptions{DanglingUniform: opts.DanglingUniform})
	rows := make([][]outEdge, n)
	for i := 0; i < n; i++ {
		matrix.RowNonZeros(a, i, func(j int, w float64) {
			rows[i] = append(rows[i], outEdge{to: j, a: w})
		})
	}

	// Channels: one inbox per node per round, buffered for all senders.
	x := matrix.Uniform(n)
	var diag Diagnostics
	diag.Dangling = dangling

	inbox := make([]chan message, n)
	for j := range inbox {
		inbox[j] = make(chan message, n)
	}

	for round := 0; round < maxIter; round++ {
		// Send phase: every node splits its score along its row.
		var sendWG sync.WaitGroup
		for i := 0; i < n; i++ {
			sendWG.Add(1)
			go func(i int) {
				defer sendWG.Done()
				xi := x[i]
				for _, e := range rows[i] {
					inbox[e.to] <- message{from: i, share: e.a * xi}
				}
			}(i)
		}
		sendWG.Wait()

		// Receive phase: every node drains its inbox, sorts by sender
		// for reproducible summation, and updates its score.
		next := make([]float64, n)
		var recvWG sync.WaitGroup
		for j := 0; j < n; j++ {
			recvWG.Add(1)
			go func(j int) {
				defer recvWG.Done()
				var msgs []message
				for {
					select {
					case m := <-inbox[j]:
						msgs = append(msgs, m)
						continue
					default:
					}
					break
				}
				sort.Slice(msgs, func(a, b int) bool { return msgs[a].from < msgs[b].from })
				s := 0.0
				for _, m := range msgs {
					s += m.share
				}
				next[j] = s
			}(j)
		}
		recvWG.Wait()

		// Normalization + convergence check: in a real deployment this
		// is an all-reduce; here the barrier plays that role.
		matrix.VecNormalizeL1(next)
		var delta float64
		switch opts.Stop {
		case StopAvgRelErr:
			delta = matrix.AvgRelErr(next, x)
		default:
			delta = matrix.VecDiffNormL2(next, x)
		}
		x = next
		diag.Iterations = round + 1
		diag.Delta = delta
		if delta < eps {
			diag.Converged = true
			break
		}
	}
	return x, diag, nil
}
