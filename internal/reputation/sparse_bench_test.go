package reputation

import (
	"testing"

	"gridvo/internal/trust"
	"gridvo/internal/xrand"
)

// These benchmarks track the sparse-substrate scaling claim (DESIGN §13):
// a power-method solve on a mean-degree-20 Erdős–Rényi graph is O(nnz)
// per iteration and a million nodes converge in single-digit seconds.
// cmd/benchjson -sparse runs the full measured sweep; these are the quick
// in-tree checks.

func benchGlobalCSR(b *testing.B, n int) {
	g := trust.SparseErdosRenyi(xrand.New(42), n, 20)
	g.SetFormat(trust.FormatCSR)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, diag, err := Global(g, DefaultOptions()); err != nil || !diag.Converged {
			b.Fatalf("solve failed: %+v err=%v", diag, err)
		}
	}
}

func BenchmarkGlobalCSR64k(b *testing.B)  { benchGlobalCSR(b, 65536) }
func BenchmarkGlobalCSR256k(b *testing.B) { benchGlobalCSR(b, 262144) }
