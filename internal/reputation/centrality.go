package reputation

import (
	"fmt"
	"math"

	"gridvo/internal/trust"
)

// This file implements the graph-centrality reputation baselines surveyed
// in the paper's related work (Freeman's degree/closeness/betweenness
// centralities and PageRank/EigenTrust-style eigenvector variants). They
// plug into the mechanism's eviction rule for ablation benchmarks: replace
// "evict the GSP with the lowest power-method reputation" by "lowest
// centrality according to X" and compare outcomes.

// Centrality identifies one of the implemented node-scoring functions.
type Centrality int

const (
	// CentralityPower is the paper's measure: the power-method left
	// principal eigenvector of the normalized trust matrix.
	CentralityPower Centrality = iota
	// CentralityInDegree scores each GSP by the total trust weight it
	// receives (weighted in-degree).
	CentralityInDegree
	// CentralityOutDegree scores each GSP by the total trust weight it
	// emits. Not a reputation per se, but a useful control.
	CentralityOutDegree
	// CentralityCloseness is Freeman closeness on the reversed trust
	// graph: GSPs that are easily reached *by* trust are central.
	CentralityCloseness
	// CentralityBetweenness is Brandes betweenness on the trust digraph.
	CentralityBetweenness
	// CentralityPageRank is the damped random-surfer variant (d = 0.15
	// teleport), robust on reducible graphs.
	CentralityPageRank
)

// String returns the measure name for experiment metadata.
func (c Centrality) String() string {
	switch c {
	case CentralityPower:
		return "power"
	case CentralityInDegree:
		return "in-degree"
	case CentralityOutDegree:
		return "out-degree"
	case CentralityCloseness:
		return "closeness"
	case CentralityBetweenness:
		return "betweenness"
	case CentralityPageRank:
		return "pagerank"
	default:
		return fmt.Sprintf("Centrality(%d)", int(c))
	}
}

// Scores computes the requested centrality for every GSP in g. All
// measures return an L1-normalized non-negative vector so they are
// interchangeable inside the mechanism's eviction rule.
func Scores(g *trust.Graph, c Centrality) ([]float64, error) {
	if g.N() == 0 {
		return nil, ErrEmptyGraph
	}
	switch c {
	case CentralityPower:
		x, _, err := Global(g, DefaultOptions())
		return x, err
	case CentralityInDegree:
		return normalizeScores(weightedDegree(g, true)), nil
	case CentralityOutDegree:
		return normalizeScores(weightedDegree(g, false)), nil
	case CentralityCloseness:
		return normalizeScores(closeness(g)), nil
	case CentralityBetweenness:
		return normalizeScores(betweenness(g)), nil
	case CentralityPageRank:
		opts := DefaultOptions()
		opts.Damping = 0.15
		x, _, err := Global(g, opts)
		return x, err
	default:
		return nil, fmt.Errorf("reputation: unknown centrality %d", int(c))
	}
}

func normalizeScores(x []float64) []float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	if s == 0 {
		// All-zero scores (e.g. edgeless graph): fall back to uniform so
		// downstream averaging still behaves.
		u := 1 / float64(len(x))
		for i := range x {
			x[i] = u
		}
		return x
	}
	for i := range x {
		x[i] /= s
	}
	return x
}

func weightedDegree(g *trust.Graph, incoming bool) []float64 {
	n := g.N()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		g.VisitNeighbors(i, func(j int, w float64) {
			if incoming {
				out[j] += w
			} else {
				out[i] += w
			}
		})
	}
	return out
}

// adjacency materializes the unweighted out-neighbour lists once so the
// BFS-based centralities run in O(n+nnz) per source instead of probing
// every (u,v) pair.
func adjacency(g *trust.Graph) [][]int {
	n := g.N()
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		g.VisitNeighbors(i, func(j int, _ float64) {
			adj[i] = append(adj[i], j)
		})
	}
	return adj
}

// closeness computes, for each node v, 1/Σ_u dist(u→v) over nodes u that
// can reach v along trust edges (hops, unweighted), multiplied by the
// fraction of nodes that can reach it (the Wasserman–Faust correction for
// disconnected graphs). Nodes nobody can reach score 0.
func closeness(g *trust.Graph) []float64 {
	n := g.N()
	out := make([]float64, n)
	if n < 2 {
		return out
	}
	// BFS from each source along forward edges gives dist(source→·); we need
	// distances *into* v, so accumulate per target.
	adj := adjacency(g)
	distSum := make([]float64, n)
	reachCnt := make([]int, n)
	queue := make([]int, 0, n)
	dist := make([]int, n)
	for src := 0; src < n; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue = append(queue[:0], src)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		for v := 0; v < n; v++ {
			if v != src && dist[v] > 0 {
				distSum[v] += float64(dist[v])
				reachCnt[v]++
			}
		}
	}
	for v := 0; v < n; v++ {
		if reachCnt[v] == 0 {
			continue
		}
		frac := float64(reachCnt[v]) / float64(n-1)
		out[v] = frac * float64(reachCnt[v]) / distSum[v]
	}
	return out
}

// betweenness is Brandes' algorithm on the unweighted trust digraph.
func betweenness(g *trust.Graph) []float64 {
	n := g.N()
	bc := make([]float64, n)
	if n < 3 {
		return bc
	}
	adj := adjacency(g)
	for s := 0; s < n; s++ {
		// Single-source shortest paths (BFS).
		stack := make([]int, 0, n)
		preds := make([][]int, n)
		sigma := make([]float64, n)
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		sigma[s] = 1
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			stack = append(stack, v)
			for _, w := range adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		// Accumulation.
		delta := make([]float64, n)
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				bc[w] += delta[w]
			}
		}
	}
	return bc
}

// EigenTrustOptions parameterize the EigenTrust-style variant, which biases
// the iteration toward a set of pre-trusted peers (Kamvar et al., WWW'03).
type EigenTrustOptions struct {
	// PreTrusted lists GSP indices that anchor the trust distribution.
	// Empty means "all GSPs equally pre-trusted", which reduces to damped
	// power iteration.
	PreTrusted []int
	// Alpha is the mixing weight toward the pre-trusted distribution; the
	// zero value selects 0.15 (the value common in the EigenTrust
	// literature).
	Alpha float64
	// Epsilon / MaxIter as in Options; zero values select the defaults.
	Epsilon float64
	MaxIter int
}

// EigenTrust computes EigenTrust-style reputation: power iteration on the
// normalized trust matrix mixed toward the pre-trusted distribution p:
// x ← (1−α)·Aᵀx + α·p. The result is L1-normalized.
//
//gridvolint:ignore ctxthread bounded by MaxIter; cancellation is enforced per-solve by mechanism.Engine
func EigenTrust(g *trust.Graph, opts EigenTrustOptions) ([]float64, Diagnostics, error) {
	n := g.N()
	if n == 0 {
		return nil, Diagnostics{}, ErrEmptyGraph
	}
	alpha := opts.Alpha
	if alpha == 0 {
		alpha = 0.15
	}
	if alpha < 0 || alpha >= 1 {
		return nil, Diagnostics{}, fmt.Errorf("reputation: EigenTrust alpha %v outside [0,1)", alpha)
	}
	eps := opts.Epsilon
	if eps == 0 {
		eps = DefaultEpsilon
	}
	maxIter := opts.MaxIter
	if maxIter == 0 {
		maxIter = DefaultMaxIter
	}
	p := make([]float64, n)
	if len(opts.PreTrusted) == 0 {
		for i := range p {
			p[i] = 1 / float64(n)
		}
	} else {
		share := 1 / float64(len(opts.PreTrusted))
		for _, i := range opts.PreTrusted {
			if i < 0 || i >= n {
				return nil, Diagnostics{}, fmt.Errorf("reputation: pre-trusted index %d out of range [0,%d)", i, n)
			}
			p[i] += share
		}
	}
	a, dangling := g.Normalized(trust.NormalizeOptions{DanglingUniform: true})
	x := append([]float64(nil), p...)
	var diag Diagnostics
	diag.Dangling = dangling
	for q := 0; q < maxIter; q++ {
		next := a.TMulVec(x)
		for i := range next {
			next[i] = (1-alpha)*next[i] + alpha*p[i]
		}
		// Mixing with p keeps the iterate in the simplex; renormalize to
		// shed accumulated floating-point drift.
		s := 0.0
		for _, v := range next {
			s += v
		}
		if s > 0 {
			for i := range next {
				next[i] /= s
			}
		}
		delta := 0.0
		for i := range next {
			delta += math.Abs(next[i] - x[i])
		}
		x = next
		diag.Iterations = q + 1
		diag.Delta = delta
		if delta < eps {
			diag.Converged = true
			break
		}
	}
	return x, diag, nil
}
