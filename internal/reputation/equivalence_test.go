package reputation

import (
	"math"
	"testing"

	"gridvo/internal/trust"
	"gridvo/internal/xrand"
)

// These tests pin the PR 6 substrate contract: for the same trust graph,
// the Dense and CSR materializations must produce bitwise-identical
// reputation vectors and diagnostics — not merely close. Any divergence
// means the accumulation orders drifted apart and determinism fingerprints
// would fork by format.

func formatPair(seed uint64, n int, p float64) (*trust.Graph, *trust.Graph) {
	g := trust.ErdosRenyi(xrand.New(seed), n, p)
	gd, gc := g.Clone(), g.Clone()
	gd.SetFormat(trust.FormatDense)
	gc.SetFormat(trust.FormatCSR)
	return gd, gc
}

func assertBitsEqual(t *testing.T, label string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s: index %d dense %v (%#x) != csr %v (%#x)",
				label, i, a[i], math.Float64bits(a[i]), b[i], math.Float64bits(b[i]))
		}
	}
}

func TestGlobalFormatEquivalence(t *testing.T) {
	for _, n := range []int{3, 8, 16, 40} {
		for _, p := range []float64{0.05, 0.2, 0.5, 0.9} {
			gd, gc := formatPair(uint64(n*100)+uint64(p*1000), n, p)
			for _, opts := range []Options{
				DefaultOptions(),
				{DanglingUniform: false},
				{DanglingUniform: true, Damping: 0.15},
				{DanglingUniform: true, Stop: StopAvgRelErr},
			} {
				xd, dd, errD := Global(gd, opts)
				xc, dc, errC := Global(gc, opts)
				if (errD == nil) != (errC == nil) {
					t.Fatalf("n=%d p=%v: error mismatch %v vs %v", n, p, errD, errC)
				}
				if errD != nil {
					continue
				}
				assertBitsEqual(t, "scores", xd, xc)
				if dd.Iterations != dc.Iterations || dd.Converged != dc.Converged ||
					math.Float64bits(dd.Delta) != math.Float64bits(dc.Delta) {
					t.Fatalf("n=%d p=%v: diagnostics %+v vs %+v", n, p, dd, dc)
				}
				if len(dd.Dangling) != len(dc.Dangling) {
					t.Fatalf("n=%d p=%v: dangling %v vs %v", n, p, dd.Dangling, dc.Dangling)
				}
			}
		}
	}
}

func TestGlobalFormatEquivalenceWarmStart(t *testing.T) {
	gd, gc := formatPair(42, 16, 0.1)
	// Cold solve establishes the eigenvector, then a perturbed warm start
	// must follow the identical trajectory in both formats.
	xd, _, err := Global(gd, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	warm := append([]float64(nil), xd...)
	warm[0] += 0.01
	opts := DefaultOptions()
	opts.InitialVector = warm
	wd, dd, errD := Global(gd, opts)
	wc, dc, errC := Global(gc, opts)
	if errD != nil || errC != nil {
		t.Fatalf("warm solves errored: %v %v", errD, errC)
	}
	if !dd.Warm || !dc.Warm {
		t.Fatalf("warm flag lost: dense %+v csr %+v", dd, dc)
	}
	assertBitsEqual(t, "warm scores", wd, wc)
	if dd.Iterations != dc.Iterations {
		t.Fatalf("warm iterations %d vs %d", dd.Iterations, dc.Iterations)
	}
}

func TestDistributedFormatEquivalence(t *testing.T) {
	gd, gc := formatPair(7, 12, 0.25)
	xd, dd, errD := DistributedGlobal(gd, DefaultOptions())
	xc, dc, errC := DistributedGlobal(gc, DefaultOptions())
	if errD != nil || errC != nil {
		t.Fatalf("distributed solves errored: %v %v", errD, errC)
	}
	assertBitsEqual(t, "distributed scores", xd, xc)
	if dd.Iterations != dc.Iterations {
		t.Fatalf("distributed iterations %d vs %d", dd.Iterations, dc.Iterations)
	}
}

func TestCentralityFormatEquivalence(t *testing.T) {
	for _, c := range []Centrality{
		CentralityPower, CentralityInDegree, CentralityOutDegree,
		CentralityCloseness, CentralityBetweenness, CentralityPageRank,
	} {
		gd, gc := formatPair(11, 14, 0.2)
		sd, errD := Scores(gd, c)
		sc, errC := Scores(gc, c)
		if errD != nil || errC != nil {
			t.Fatalf("%v: %v %v", c, errD, errC)
		}
		assertBitsEqual(t, c.String(), sd, sc)
	}
}

func TestEigenTrustFormatEquivalence(t *testing.T) {
	gd, gc := formatPair(13, 16, 0.15)
	opts := EigenTrustOptions{PreTrusted: []int{0, 3}}
	xd, dd, errD := EigenTrust(gd, opts)
	xc, dc, errC := EigenTrust(gc, opts)
	if errD != nil || errC != nil {
		t.Fatalf("EigenTrust errored: %v %v", errD, errC)
	}
	assertBitsEqual(t, "eigentrust", xd, xc)
	if dd.Iterations != dc.Iterations {
		t.Fatalf("EigenTrust iterations %d vs %d", dd.Iterations, dc.Iterations)
	}
}

// TestWarmBeatsColdOnSparseGraph pins the incremental-reputation premise:
// after a small perturbation, re-solving from the previous eigenvector
// takes strictly fewer iterations than a cold start.
func TestWarmBeatsColdOnSparseGraph(t *testing.T) {
	g := trust.SparseErdosRenyi(xrand.New(99), 400, 10)
	x, cold, err := Global(g, DefaultOptions())
	if err != nil || !cold.Converged {
		t.Fatalf("cold solve: %+v err=%v", cold, err)
	}
	// Perturb one edge, then warm-solve.
	g.SetTrust(1, 2, 0.5)
	opts := DefaultOptions()
	opts.InitialVector = x
	_, warm, err := Global(g, opts)
	if err != nil || !warm.Converged || !warm.Warm {
		t.Fatalf("warm solve: %+v err=%v", warm, err)
	}
	_, cold2, err := Global(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations >= cold2.Iterations {
		t.Fatalf("warm start took %d iterations, cold %d", warm.Iterations, cold2.Iterations)
	}
}
