package reputation

import (
	"fmt"
	"testing"

	"gridvo/internal/trust"
	"gridvo/internal/xrand"
)

func benchGraph(m int, p float64) *trust.Graph {
	return trust.ErdosRenyi(xrand.New(uint64(m)), m, p)
}

// BenchmarkPowerMethod measures Algorithm 2 at the paper's graph size
// (m = 16, p = 0.1) and larger federations.
func BenchmarkPowerMethod(b *testing.B) {
	for _, m := range []int{16, 64, 256} {
		g := benchGraph(m, 0.1)
		b.Run(fmt.Sprintf("m%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := Global(g, DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStopRuleAblation compares the two convergence tests the paper
// describes (pseudocode norm-difference vs prose average-relative-error).
func BenchmarkStopRuleAblation(b *testing.B) {
	g := benchGraph(16, 0.1)
	for _, rule := range []StopRule{StopNormDiff, StopAvgRelErr} {
		b.Run(rule.String(), func(b *testing.B) {
			opts := DefaultOptions()
			opts.Stop = rule
			var iters int
			for i := 0; i < b.N; i++ {
				_, diag, err := Global(g, opts)
				if err != nil {
					b.Fatal(err)
				}
				iters = diag.Iterations
			}
			b.ReportMetric(float64(iters), "iterations")
		})
	}
}

// BenchmarkDampingAblation compares the paper's undamped power method with
// the damped (PageRank-style) variant on the sparse p = 0.1 graphs where
// reducibility matters.
func BenchmarkDampingAblation(b *testing.B) {
	g := benchGraph(16, 0.1)
	for _, damping := range []float64{0, 0.15} {
		b.Run(fmt.Sprintf("d%.2f", damping), func(b *testing.B) {
			opts := DefaultOptions()
			opts.Damping = damping
			for i := 0; i < b.N; i++ {
				if _, _, err := Global(g, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDanglingAblation compares the uniform-row dangling fix with the
// substochastic (renormalized-iterate) handling — DESIGN.md's §5 choice.
func BenchmarkDanglingAblation(b *testing.B) {
	g := benchGraph(16, 0.1)
	for _, uniform := range []bool{true, false} {
		b.Run(fmt.Sprintf("uniform=%v", uniform), func(b *testing.B) {
			opts := Options{DanglingUniform: uniform}
			for i := 0; i < b.N; i++ {
				if _, _, err := Global(g, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCentralities compares the cost of every eviction-rule scoring
// function on the paper's graph size.
func BenchmarkCentralities(b *testing.B) {
	g := benchGraph(16, 0.3)
	for _, c := range []Centrality{
		CentralityPower, CentralityInDegree, CentralityOutDegree,
		CentralityCloseness, CentralityBetweenness, CentralityPageRank,
	} {
		b.Run(c.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Scores(g, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEigenTrust measures the pre-trusted variant.
func BenchmarkEigenTrust(b *testing.B) {
	g := benchGraph(16, 0.3)
	for i := 0; i < b.N; i++ {
		if _, _, err := EigenTrust(g, EigenTrustOptions{PreTrusted: []int{0, 1}}); err != nil {
			b.Fatal(err)
		}
	}
}
