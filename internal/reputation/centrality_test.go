package reputation

import (
	"math"
	"testing"

	"gridvo/internal/matrix"
	"gridvo/internal/trust"
	"gridvo/internal/xrand"
)

// star returns a graph where all leaves trust the hub (node 0) and the hub
// trusts all leaves weakly.
func star(n int) *trust.Graph {
	g := trust.NewGraph(n)
	for i := 1; i < n; i++ {
		g.SetTrust(i, 0, 1)
		g.SetTrust(0, i, 0.1)
	}
	return g
}

func TestScoresEmptyGraph(t *testing.T) {
	if _, err := Scores(trust.NewGraph(0), CentralityPower); err != ErrEmptyGraph {
		t.Fatalf("err = %v", err)
	}
}

func TestScoresUnknownCentrality(t *testing.T) {
	if _, err := Scores(star(3), Centrality(99)); err == nil {
		t.Fatal("unknown centrality accepted")
	}
}

func TestAllCentralitiesNormalized(t *testing.T) {
	g := trust.ErdosRenyi(xrand.New(1), 12, 0.3)
	for _, c := range []Centrality{
		CentralityPower, CentralityInDegree, CentralityOutDegree,
		CentralityCloseness, CentralityBetweenness, CentralityPageRank,
	} {
		x, err := Scores(g, c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if len(x) != 12 {
			t.Fatalf("%v: length %d", c, len(x))
		}
		sum := 0.0
		for _, v := range x {
			if v < -1e-12 {
				t.Fatalf("%v: negative score %v", c, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%v: sum = %v, want 1", c, sum)
		}
	}
}

func TestCentralityStrings(t *testing.T) {
	names := map[Centrality]string{
		CentralityPower:       "power",
		CentralityInDegree:    "in-degree",
		CentralityOutDegree:   "out-degree",
		CentralityCloseness:   "closeness",
		CentralityBetweenness: "betweenness",
		CentralityPageRank:    "pagerank",
	}
	for c, want := range names {
		if c.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
	if Centrality(42).String() == "" {
		t.Fatal("unknown centrality empty string")
	}
}

func TestInDegreeHubWins(t *testing.T) {
	x, err := Scores(star(6), CentralityInDegree)
	if err != nil {
		t.Fatal(err)
	}
	if matrix.ArgMax(x) != 0 {
		t.Fatalf("in-degree = %v; hub should win", x)
	}
}

func TestOutDegreeHubWins(t *testing.T) {
	// The hub emits 5 edges of 0.1 = 0.5 total; each leaf emits 1.0, so
	// leaves should beat the hub on out-degree.
	x, err := Scores(star(6), CentralityOutDegree)
	if err != nil {
		t.Fatal(err)
	}
	if matrix.ArgMin(x) != 0 {
		t.Fatalf("out-degree = %v; hub should be lowest", x)
	}
}

func TestClosenessHubWins(t *testing.T) {
	x, err := Scores(star(6), CentralityCloseness)
	if err != nil {
		t.Fatal(err)
	}
	if matrix.ArgMax(x) != 0 {
		t.Fatalf("closeness = %v; hub should win", x)
	}
}

func TestBetweennessBridgeWins(t *testing.T) {
	// Two cliques joined only through node 2: the bridge has all the
	// betweenness.
	g := trust.NewGraph(5)
	for _, e := range [][2]int{{0, 1}, {1, 0}, {0, 2}, {1, 2}, {2, 0}, {2, 1}} {
		g.SetTrust(e[0], e[1], 1)
	}
	for _, e := range [][2]int{{3, 4}, {4, 3}, {3, 2}, {4, 2}, {2, 3}, {2, 4}} {
		g.SetTrust(e[0], e[1], 1)
	}
	x, err := Scores(g, CentralityBetweenness)
	if err != nil {
		t.Fatal(err)
	}
	if matrix.ArgMax(x) != 2 {
		t.Fatalf("betweenness = %v; bridge (2) should win", x)
	}
}

func TestBetweennessTinyGraphs(t *testing.T) {
	for n := 0; n <= 2; n++ {
		g := trust.NewGraph(n)
		if n == 2 {
			g.SetTrust(0, 1, 1)
		}
		if n == 0 {
			continue // empty handled by ErrEmptyGraph
		}
		x, err := Scores(g, CentralityBetweenness)
		if err != nil {
			t.Fatal(err)
		}
		// No betweenness possible: fallback to uniform.
		for _, v := range x {
			if math.Abs(v-1/float64(n)) > 1e-12 {
				t.Fatalf("n=%d betweenness = %v, want uniform", n, x)
			}
		}
	}
}

func TestEdgelessGraphUniformScores(t *testing.T) {
	g := trust.NewGraph(4)
	for _, c := range []Centrality{CentralityInDegree, CentralityCloseness, CentralityBetweenness} {
		x, err := Scores(g, c)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range x {
			if math.Abs(v-0.25) > 1e-12 {
				t.Fatalf("%v on edgeless graph = %v, want uniform", c, x)
			}
		}
	}
}

func TestPageRankRobustOnReducibleGraph(t *testing.T) {
	// A chain 0→1→2 with no return edges is reducible; PageRank must
	// still converge and rank 2 (the sink of trust) highest.
	g := trust.NewGraph(3)
	g.SetTrust(0, 1, 1)
	g.SetTrust(1, 2, 1)
	x, err := Scores(g, CentralityPageRank)
	if err != nil {
		t.Fatal(err)
	}
	if matrix.ArgMax(x) != 2 {
		t.Fatalf("pagerank on chain = %v; node 2 should win", x)
	}
}

func TestEigenTrustBasics(t *testing.T) {
	g := star(6)
	x, diag, err := EigenTrust(g, EigenTrustOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Converged {
		t.Fatal("EigenTrust did not converge")
	}
	if matrix.ArgMax(x) != 0 {
		t.Fatalf("EigenTrust = %v; hub should win", x)
	}
	if math.Abs(matrix.VecSum(x)-1) > 1e-9 {
		t.Fatal("EigenTrust not normalized")
	}
}

func TestEigenTrustPreTrustedBias(t *testing.T) {
	g := ring(6)
	base, _, err := EigenTrust(g, EigenTrustOptions{})
	if err != nil {
		t.Fatal(err)
	}
	biased, _, err := EigenTrust(g, EigenTrustOptions{PreTrusted: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if biased[2] <= base[2] {
		t.Fatalf("pre-trusting node 2 did not raise its score: %v vs %v", biased[2], base[2])
	}
}

func TestEigenTrustValidation(t *testing.T) {
	if _, _, err := EigenTrust(trust.NewGraph(0), EigenTrustOptions{}); err != ErrEmptyGraph {
		t.Fatal("empty graph accepted")
	}
	if _, _, err := EigenTrust(ring(3), EigenTrustOptions{Alpha: 2}); err == nil {
		t.Fatal("alpha >= 1 accepted")
	}
	if _, _, err := EigenTrust(ring(3), EigenTrustOptions{PreTrusted: []int{9}}); err == nil {
		t.Fatal("out-of-range pre-trusted accepted")
	}
}

func TestPowerVsPageRankAgreeOnStrongGraph(t *testing.T) {
	// On a strongly connected, aperiodic graph the undamped power method
	// and lightly damped PageRank should produce the same ranking of the
	// extremes.
	g := trust.ErdosRenyi(xrand.New(33), 10, 0.6)
	if !g.StronglyConnected() {
		t.Skip("sampled graph not strongly connected")
	}
	p, err := Scores(g, CentralityPower)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := Scores(g, CentralityPageRank)
	if err != nil {
		t.Fatal(err)
	}
	if matrix.ArgMax(p) != matrix.ArgMax(pr) {
		t.Fatalf("power argmax %d != pagerank argmax %d\npower=%v\npr=%v",
			matrix.ArgMax(p), matrix.ArgMax(pr), p, pr)
	}
}
