package tablewriter

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table accumulates rows of string cells under a fixed header.
type Table struct {
	header []string
	rows   [][]string
	title  string
}

// New returns a table with the given column headers.
func New(header ...string) *Table {
	return &Table{header: append([]string(nil), header...)}
}

// SetTitle sets an optional title line printed above the table.
func (t *Table) SetTitle(title string) { t.title = title }

// AddRow appends a row. Short rows are padded with empty cells; long rows
// are an error surfaced at render time via panic, because they indicate a
// programming mistake in the harness, not bad data.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		panic(fmt.Sprintf("tablewriter: row with %d cells exceeds %d columns", len(cells), len(t.header)))
	}
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddFloats appends a row whose first cell is label and remaining cells are
// the values formatted with the given precision.
func (t *Table) AddFloats(label string, precision int, values ...float64) {
	cells := make([]string, 0, len(values)+1)
	cells = append(cells, label)
	for _, v := range values {
		cells = append(cells, strconv.FormatFloat(v, 'f', precision, 64))
	}
	t.AddRow(cells...)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table as aligned ASCII to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title)
		sb.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// RenderString returns the ASCII rendering as a string.
func (t *Table) RenderString() string {
	var sb strings.Builder
	// strings.Builder writes never fail.
	_ = t.Render(&sb)
	return sb.String()
}

// RenderCSV writes the header and rows as RFC-4180 CSV to w. The title, if
// set, is emitted as a leading comment line ("# title") which all common
// CSV consumers tolerate or can be told to skip.
func (t *Table) RenderCSV(w io.Writer) error {
	if t.title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.title); err != nil {
			return err
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.header); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Ftoa formats a float64 compactly for table cells: fixed precision, with
// trailing zeros trimmed (but at least one decimal kept for non-integers).
func Ftoa(v float64, precision int) string {
	s := strconv.FormatFloat(v, 'f', precision, 64)
	if !strings.Contains(s, ".") {
		return s
	}
	s = strings.TrimRight(s, "0")
	s = strings.TrimSuffix(s, ".")
	return s
}

// Itoa is shorthand for strconv.Itoa, re-exported so harness code only
// imports one formatting package.
func Itoa(v int) string { return strconv.Itoa(v) }
