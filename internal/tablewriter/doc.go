// Package tablewriter renders aligned ASCII tables and CSV, the two output
// formats of the experiment harness and the cmd/ tools. The ASCII form is
// what `vosim` prints to the terminal; the CSV form feeds external plotting.
package tablewriter
