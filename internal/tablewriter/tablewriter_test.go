package tablewriter

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := New("name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer", "22")
	out := tb.RenderString()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("separator missing: %q", lines[1])
	}
	// All lines should align: "longer" defines the first column width.
	for _, ln := range lines[2:] {
		if len(ln) < len("longer") {
			t.Fatalf("row too short for column width: %q", ln)
		}
	}
}

func TestTitle(t *testing.T) {
	tb := New("x")
	tb.SetTitle("Fig 1")
	tb.AddRow("1")
	out := tb.RenderString()
	if !strings.HasPrefix(out, "Fig 1\n") {
		t.Fatalf("title not first line:\n%s", out)
	}
}

func TestShortRowPadded(t *testing.T) {
	tb := New("a", "b", "c")
	tb.AddRow("only")
	out := tb.RenderString()
	if !strings.Contains(out, "only") {
		t.Fatal("row content lost")
	}
	if tb.NumRows() != 1 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestLongRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overlong row did not panic")
		}
	}()
	New("a").AddRow("1", "2")
}

func TestAddFloats(t *testing.T) {
	tb := New("label", "v1", "v2")
	tb.AddFloats("row", 2, 1.234, 5.0)
	out := tb.RenderString()
	if !strings.Contains(out, "1.23") || !strings.Contains(out, "5.00") {
		t.Fatalf("AddFloats formatting wrong:\n%s", out)
	}
}

func TestRenderCSV(t *testing.T) {
	tb := New("a", "b")
	tb.SetTitle("t")
	tb.AddRow("1", "hello, world")
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "# t\n") {
		t.Fatalf("missing title comment:\n%s", out)
	}
	if !strings.Contains(out, `"hello, world"`) {
		t.Fatalf("comma cell not quoted:\n%s", out)
	}
	if !strings.Contains(out, "a,b\n") {
		t.Fatalf("header row missing:\n%s", out)
	}
}

func TestFtoa(t *testing.T) {
	cases := []struct {
		v    float64
		p    int
		want string
	}{
		{1.5, 3, "1.5"},
		{1.0, 3, "1"},
		{1.230, 2, "1.23"},
		{100, 0, "100"},
		{-2.500, 2, "-2.5"},
	}
	for _, c := range cases {
		if got := Ftoa(c.v, c.p); got != c.want {
			t.Fatalf("Ftoa(%v,%d) = %q, want %q", c.v, c.p, got, c.want)
		}
	}
	if Itoa(42) != "42" {
		t.Fatal("Itoa wrong")
	}
}
