// Package xrand provides a deterministic, splittable pseudo-random number
// generator used by every stochastic component of gridvo.
//
// Reproducibility is a hard requirement for the simulation harness: a whole
// experiment (trust graph, cost matrices, workloads, tie-breaking inside the
// mechanisms) must be replayable from a single root seed. The standard
// library generators are deterministic too, but sharing one generator across
// components couples their consumption order: adding a single extra draw in
// one module would silently reshuffle every downstream module. xrand solves
// this with labeled splits — each component derives an independent stream
// from (parent seed, label), so streams are stable under code evolution.
//
// The core generator is SplitMix64 (Steele, Lea, Flood; JPDC 2014 / the
// java.util.SplittableRandom construction), a 64-bit mix function with
// guaranteed period 2^64 per stream and excellent statistical quality for
// simulation workloads. It is not cryptographically secure and must never be
// used for security purposes.
package xrand

import (
	"math"
	"math/bits"
)

// goldenGamma is the odd constant 2^64/φ used by SplitMix64 to advance the
// internal state; using the golden ratio guarantees a full-period Weyl
// sequence with well-distributed low-order bits.
const goldenGamma = 0x9E3779B97F4A7C15

// RNG is a deterministic pseudo-random stream. The zero value is NOT ready
// for use; construct streams with New or by splitting an existing stream.
//
// RNG is not safe for concurrent use. Concurrent components must each own a
// stream obtained via Split, which is both faster and reproducible
// regardless of scheduling.
type RNG struct {
	state uint64
}

// New returns a stream seeded from seed. Two streams created with the same
// seed produce identical sequences.
func New(seed uint64) *RNG {
	return &RNG{state: mix(seed)}
}

// mix is the SplitMix64 finalizer: a bijective avalanche function on 64-bit
// words (variant 13 of Stafford's mixers, the one used by SplittableRandom).
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += goldenGamma
	return mix(r.state)
}

// Split derives an independent child stream from this stream and a textual
// label. Splitting consumes no randomness from the parent: the child seed is
// a hash of the parent's current state and the label, so the set of child
// streams a component receives is insensitive to how many values other
// components have drawn.
func (r *RNG) Split(label string) *RNG {
	h := r.state ^ 0x632BE59BD9B4E019
	for i := 0; i < len(label); i++ {
		h = (h ^ uint64(label[i])) * 0x100000001B3
		h = bits.RotateLeft64(h, 17)
	}
	return &RNG{state: mix(h)}
}

// SplitN derives the i-th of a family of independent child streams. It is
// the indexed analogue of Split, used when a component needs one stream per
// repetition or per entity.
func (r *RNG) SplitN(label string, i int) *RNG {
	child := r.Split(label)
	child.state = mix(child.state ^ (uint64(i)+1)*goldenGamma)
	return child
}

// Int63 returns a non-negative 63-bit pseudo-random integer.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// IntN returns a uniform integer in [0, n). It panics if n <= 0.
//
// The implementation uses Lemire's multiply-shift rejection method, which is
// unbiased and needs no divisions in the common case.
func (r *RNG) IntN(n int) int {
	if n <= 0 {
		panic("xrand: IntN called with n <= 0")
	}
	return int(r.Uint64N(uint64(n)))
}

// Uint64N returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64N(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64N called with n == 0")
	}
	// Lemire's method: hi part of a 128-bit product is uniform in [0,n)
	// after rejecting the small biased region of the low part.
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform float64 in [lo, hi). It panics if hi < lo.
func (r *RNG) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic("xrand: Uniform called with hi < lo")
	}
	return lo + (hi-lo)*r.Float64()
}

// UniformInt returns a uniform integer in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *RNG) UniformInt(lo, hi int) int {
	if hi < lo {
		panic("xrand: UniformInt called with hi < lo")
	}
	return lo + r.IntN(hi-lo+1)
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Normal returns a normally distributed float64 with the given mean and
// standard deviation, generated by the Marsaglia polar method.
func (r *RNG) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// BoundedNormal returns Normal(mean, stddev) resampled until it falls inside
// [lo, hi]. It panics if hi < lo. Resampling (rather than clamping) keeps
// the distribution smooth near the bounds.
func (r *RNG) BoundedNormal(mean, stddev, lo, hi float64) float64 {
	if hi < lo {
		panic("xrand: BoundedNormal called with hi < lo")
	}
	if stddev <= 0 {
		return math.Min(hi, math.Max(lo, mean))
	}
	for i := 0; i < 1024; i++ {
		x := r.Normal(mean, stddev)
		if x >= lo && x <= hi {
			return x
		}
	}
	// Pathological parameters (bounds many sigmas from the mean): fall back
	// to uniform so callers still make progress.
	return r.Uniform(lo, hi)
}

// LogUniform returns a float64 log-uniformly distributed in [lo, hi]; both
// bounds must be positive. Log-uniform sampling matches the heavy-tailed
// shape of job runtimes and sizes in parallel workload traces.
func (r *RNG) LogUniform(lo, hi float64) float64 {
	if lo <= 0 || hi < lo {
		panic("xrand: LogUniform requires 0 < lo <= hi")
	}
	return math.Exp(r.Uniform(math.Log(lo), math.Log(hi)))
}

// Exponential returns an exponentially distributed float64 with the given
// mean (= 1/rate). Used for inter-arrival times in the trace generator.
func (r *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("xrand: Exponential requires mean > 0")
	}
	// 1-Float64() is in (0,1], so Log never sees 0.
	return -mean * math.Log(1-r.Float64())
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes s in place (Fisher–Yates).
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle permutes n elements in place using the provided swap function,
// mirroring math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen element index of a slice of length n,
// or -1 when n == 0.
func (r *RNG) Pick(n int) int {
	if n == 0 {
		return -1
	}
	return r.IntN(n)
}

// Zipf returns integers in [1, n] following a Zipf distribution with
// exponent s > 1 is not required; any s > 0 works. Sampling is by inverse
// transform over the precomputed CDF held in the returned Zipf object.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over [1, n] with exponent s. It panics if
// n <= 0 or s < 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf requires n > 0")
	}
	if s < 0 {
		panic("xrand: NewZipf requires s >= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += 1 / math.Pow(float64(k), s)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next returns the next Zipf-distributed value in [1, len(cdf)].
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search for the first CDF entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}
