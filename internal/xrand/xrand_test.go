package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: streams diverged: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("streams with different seeds collided %d/1000 times", same)
	}
}

func TestSplitIndependentOfParentConsumption(t *testing.T) {
	// The child stream must not depend on how much the parent consumed
	// after the split point is fixed, only on the parent state at split
	// time. Here both parents are at the same state, one splits before
	// drawing, the other draws first from a *different* label stream.
	p1 := New(7)
	p2 := New(7)
	c1 := p1.Split("child")
	_ = p2.Split("other").Uint64() // unrelated consumption
	c2 := p2.Split("child")
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split is not a pure function of (parent state, label)")
		}
	}
}

func TestSplitLabelsIndependent(t *testing.T) {
	p := New(7)
	a := p.Split("alpha")
	b := p.Split("beta")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("streams with different labels collided %d/1000 times", same)
	}
}

func TestSplitNDistinct(t *testing.T) {
	p := New(9)
	seen := map[uint64]int{}
	for i := 0; i < 100; i++ {
		v := p.SplitN("rep", i).Uint64()
		if j, dup := seen[v]; dup {
			t.Fatalf("SplitN(%d) and SplitN(%d) produced identical first draw", i, j)
		}
		seen[v] = i
	}
}

func TestIntNRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.IntN(n)
			if v < 0 || v >= n {
				t.Fatalf("IntN(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntNPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntN(0) did not panic")
		}
	}()
	New(1).IntN(0)
}

func TestIntNUniformity(t *testing.T) {
	// Chi-squared check over 10 buckets; threshold is the 0.999 quantile
	// of chi2 with 9 dof (27.88) to keep the test robust.
	r := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.IntN(n)]++
	}
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.88 {
		t.Fatalf("IntN uniformity chi2 = %.2f > 27.88; counts = %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(-3, 12)
		if v < -3 || v >= 12 {
			t.Fatalf("Uniform(-3,12) = %v out of range", v)
		}
	}
}

func TestUniformIntInclusive(t *testing.T) {
	r := New(19)
	sawLo, sawHi := false, false
	for i := 0; i < 10000; i++ {
		v := r.UniformInt(2, 5)
		if v < 2 || v > 5 {
			t.Fatalf("UniformInt(2,5) = %d out of range", v)
		}
		sawLo = sawLo || v == 2
		sawHi = sawHi || v == 5
	}
	if !sawLo || !sawHi {
		t.Fatal("UniformInt never produced an endpoint in 10000 draws")
	}
}

func TestBoolProbabilities(t *testing.T) {
	r := New(23)
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v, want ~0.3", p)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(29)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("Normal stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestBoundedNormalStaysInBounds(t *testing.T) {
	r := New(31)
	for i := 0; i < 10000; i++ {
		v := r.BoundedNormal(5, 10, 4, 6)
		if v < 4 || v > 6 {
			t.Fatalf("BoundedNormal escaped bounds: %v", v)
		}
	}
	// Degenerate stddev returns the clamped mean.
	if got := r.BoundedNormal(100, 0, 4, 6); got != 6 {
		t.Fatalf("BoundedNormal with stddev=0, mean above hi = %v, want 6", got)
	}
}

func TestLogUniformRangeAndShape(t *testing.T) {
	r := New(37)
	below := 0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.LogUniform(1, 10000)
		if v < 1 || v > 10000 {
			t.Fatalf("LogUniform out of range: %v", v)
		}
		if v < 100 {
			below++
		}
	}
	// log-uniform over [1,1e4]: P(v<100) = 0.5.
	p := float64(below) / n
	if math.Abs(p-0.5) > 0.01 {
		t.Fatalf("LogUniform median misplaced: P(v<100) = %v, want ~0.5", p)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(41)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exponential(3)
		if v < 0 {
			t.Fatalf("Exponential returned negative value %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("Exponential mean = %v, want ~3", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(43)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermProperty(t *testing.T) {
	r := New(47)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		sum := 0
		for _, v := range p {
			sum += v
		}
		return sum == n*(n-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleSwapsAllPositions(t *testing.T) {
	r := New(53)
	const n = 52
	orig := make([]int, n)
	cur := make([]int, n)
	for i := range orig {
		orig[i] = i
		cur[i] = i
	}
	moved := make([]bool, n)
	for trial := 0; trial < 50; trial++ {
		copy(cur, orig)
		r.Shuffle(n, func(i, j int) { cur[i], cur[j] = cur[j], cur[i] })
		for i := range cur {
			if cur[i] != orig[i] {
				moved[i] = true
			}
		}
	}
	for i, m := range moved {
		if !m {
			t.Fatalf("position %d never moved across 50 shuffles", i)
		}
	}
}

func TestPickEmpty(t *testing.T) {
	if got := New(1).Pick(0); got != -1 {
		t.Fatalf("Pick(0) = %d, want -1", got)
	}
}

func TestZipfRangeAndMonotoneFrequency(t *testing.T) {
	r := New(59)
	z := NewZipf(r, 50, 1.2)
	counts := make([]int, 51)
	for i := 0; i < 200000; i++ {
		v := z.Next()
		if v < 1 || v > 50 {
			t.Fatalf("Zipf value %d out of [1,50]", v)
		}
		counts[v]++
	}
	if counts[1] <= counts[10] || counts[10] <= counts[50] {
		t.Fatalf("Zipf frequencies not decreasing: c1=%d c10=%d c50=%d",
			counts[1], counts[10], counts[50])
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(n=0) did not panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func TestUint64NBoundary(t *testing.T) {
	r := New(61)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64N(1); v != 0 {
			t.Fatalf("Uint64N(1) = %d, want 0", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntN(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.IntN(1000)
	}
}

func BenchmarkSplit(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Split("bench")
	}
}

func TestUniformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uniform(hi<lo) did not panic")
		}
	}()
	New(1).Uniform(2, 1)
}

func TestUniformIntPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("UniformInt(hi<lo) did not panic")
		}
	}()
	New(1).UniformInt(2, 1)
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(0) did not panic")
		}
	}()
	New(1).Exponential(0)
}

func TestLogUniformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LogUniform(0,1) did not panic")
		}
	}()
	New(1).LogUniform(0, 1)
}

func TestBoundedNormalPanicsAndFallback(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("BoundedNormal(hi<lo) did not panic")
			}
		}()
		New(1).BoundedNormal(0, 1, 2, 1)
	}()
	// Pathological bounds many sigmas away force the uniform fallback.
	r := New(2)
	for i := 0; i < 100; i++ {
		v := r.BoundedNormal(0, 1e-9, 100, 101)
		if v < 100 || v > 101 {
			t.Fatalf("fallback escaped bounds: %v", v)
		}
	}
}

func TestNewZipfPanicsOnNegativeExponent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(s<0) did not panic")
		}
	}()
	NewZipf(New(1), 5, -1)
}

func TestInt63NonNegative(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

func TestUint64NPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64N(0) did not panic")
		}
	}()
	New(1).Uint64N(0)
}
