// Package xrand provides a deterministic, splittable pseudo-random number
// generator used by every stochastic component of gridvo.
//
// Reproducibility is a hard requirement for the simulation harness: a whole
// experiment (trust graph, cost matrices, workloads, tie-breaking inside the
// mechanisms) must be replayable from a single root seed. The standard
// library generators are deterministic too, but sharing one generator across
// components couples their consumption order: adding a single extra draw in
// one module would silently reshuffle every downstream module. xrand solves
// this with labeled splits — each component derives an independent stream
// from (parent seed, label), so streams are stable under code evolution.
//
// The core generator is SplitMix64 (Steele, Lea, Flood; JPDC 2014 / the
// java.util.SplittableRandom construction), a 64-bit mix function with
// guaranteed period 2^64 per stream and excellent statistical quality for
// simulation workloads. It is not cryptographically secure and must never be
// used for security purposes.
package xrand
