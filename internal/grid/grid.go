package grid

import (
	"fmt"
	"sort"

	"gridvo/internal/workload"
	"gridvo/internal/xrand"
)

// GSP is one Grid Service Provider: an autonomous organization whose
// computational resources are abstracted as a single machine with an
// aggregate speed (Section II-A).
type GSP struct {
	ID          int
	Name        string
	SpeedGFLOPS float64 // s(G): floating-point operations per second, in GFLOPS
}

// Table I constants.
const (
	// PhiB is φ_b, the maximum baseline value of the Braun cost
	// generation method.
	PhiB = 100.0
	// PhiR is φ_r, the maximum row multiplier.
	PhiR = 10.0
	// MaxCost is max_c = φ_b × φ_r, the cost-matrix ceiling used in the
	// payment formula.
	MaxCost = PhiB * PhiR
	// SpeedUnitGFLOPS is the per-processor Atlas peak (4.91 GFLOPS); GSP
	// speeds are SpeedUnitGFLOPS × [MinSpeedFactor, MaxSpeedFactor].
	SpeedUnitGFLOPS = 4.91
	MinSpeedFactor  = 16
	MaxSpeedFactor  = 128
	// DefaultNumGSPs is the paper's m = 16.
	DefaultNumGSPs = 16
)

// GenerateGSPs draws m GSPs with speeds 4.91 × U[16, 128] GFLOPS
// (Table I): each provider owns between 16 and 128 Atlas-class processors.
func GenerateGSPs(rng *xrand.RNG, m int) []GSP {
	if m < 0 {
		panic("grid: GenerateGSPs with negative m")
	}
	out := make([]GSP, m)
	for i := range out {
		out[i] = GSP{
			ID:          i,
			Name:        fmt.Sprintf("G%d", i),
			SpeedGFLOPS: SpeedUnitGFLOPS * rng.Uniform(MinSpeedFactor, MaxSpeedFactor),
		}
	}
	return out
}

// TimeMatrix computes t[i][j] = w(T_j)/s(G_i) in seconds for every GSP i
// and task j. The matrix is consistent by construction (Section IV-A): a
// GSP faster on one task is faster on all tasks, because workloads are
// fixed per task and only speeds differ.
func TimeMatrix(gsps []GSP, p *workload.Program) [][]float64 {
	t := make([][]float64, len(gsps))
	for i, g := range gsps {
		if g.SpeedGFLOPS <= 0 {
			panic(fmt.Sprintf("grid: GSP %d has non-positive speed", g.ID))
		}
		row := make([]float64, p.N())
		for j, w := range p.Tasks {
			row[j] = w / g.SpeedGFLOPS
		}
		t[i] = row
	}
	return t
}

// CostMatrix generates the m×n execution-cost matrix with the method of
// Braun et al. adapted to the paper's two structural requirements
// (Section IV-A):
//
//   - costs are *unrelated* across GSPs: a faster GSP is not necessarily
//     cheaper, and for a given task either provider may be the cheaper one;
//   - costs are *workload-monotone* within each GSP: if w(T_j) > w(T_q)
//     then c(T_j, G_i) > c(T_q, G_i) for every GSP, i.e. the task with the
//     smallest workload is the cheapest on all GSPs.
//
// The generator follows Braun: a baseline vector with entries uniform in
// [1, φ_b], then each row multiplies the baseline by per-element uniform
// row multipliers in [1, φ_r]. Monotonicity is obtained by rank-matching:
// both the baseline entries and each row's multipliers are assigned to
// tasks in workload order (larger workload → larger factor), so every
// product is increasing in workload while the actual values still differ
// freely across GSPs. All costs lie in [1, φ_b·φ_r].
func CostMatrix(rng *xrand.RNG, m int, p *workload.Program) [][]float64 {
	n := p.N()
	if m < 0 {
		panic("grid: CostMatrix with negative m")
	}
	// Rank of each task by workload (ties broken by index for
	// determinism): rank[j] = position of task j in ascending workload
	// order.
	order := make([]int, n)
	for j := range order {
		order[j] = j
	}
	sort.SliceStable(order, func(a, b int) bool { return p.Tasks[order[a]] < p.Tasks[order[b]] })
	rank := make([]int, n)
	for pos, j := range order {
		rank[j] = pos
	}

	// Baseline: n uniforms in [1, φ_b], sorted ascending, assigned by
	// workload rank.
	base := make([]float64, n)
	for i := range base {
		base[i] = rng.Uniform(1, PhiB)
	}
	sort.Float64s(base)

	c := make([][]float64, m)
	mults := make([]float64, n)
	for i := 0; i < m; i++ {
		for k := range mults {
			mults[k] = rng.Uniform(1, PhiR)
		}
		sort.Float64s(mults)
		row := make([]float64, n)
		for j := 0; j < n; j++ {
			row[j] = base[rank[j]] * mults[rank[j]]
		}
		c[i] = row
	}
	return c
}

// DeadlineRange is the Table I deadline band: d = U[0.3, 2.0] × Runtime ×
// n/1000 seconds, where Runtime is the source job's runtime. The upper
// factor keeps the deadline at most ~16× a single GSP's share so feasible
// mappings exist (Section IV-A).
const (
	MinDeadlineFactor = 0.3
	MaxDeadlineFactor = 2.0
)

// Deadline draws a deadline for program p per Table I.
func Deadline(rng *xrand.RNG, p *workload.Program) float64 {
	factor := rng.Uniform(MinDeadlineFactor, MaxDeadlineFactor)
	return factor * p.BaseRuntimeSec * float64(p.N()) / 1000
}

// PaymentRange is the Table I payment band: P = U[0.2, 0.4] × max_c × n.
const (
	MinPaymentFactor = 0.2
	MaxPaymentFactor = 0.4
)

// Payment draws the user's payment for an n-task program per Table I.
func Payment(rng *xrand.RNG, n int) float64 {
	return rng.Uniform(MinPaymentFactor, MaxPaymentFactor) * MaxCost * float64(n)
}

// Speeds extracts the speed vector of a GSP slice.
func Speeds(gsps []GSP) []float64 {
	out := make([]float64, len(gsps))
	for i, g := range gsps {
		out[i] = g.SpeedGFLOPS
	}
	return out
}

// SubRows returns the rows of matrix mat selected by keep, in order —
// restricting a cost or time matrix to the members of a candidate VO.
func SubRows(mat [][]float64, keep []int) [][]float64 {
	out := make([][]float64, len(keep))
	for i, k := range keep {
		if k < 0 || k >= len(mat) {
			panic(fmt.Sprintf("grid: SubRows index %d out of range [0,%d)", k, len(mat)))
		}
		out[i] = mat[k]
	}
	return out
}

// IsTimeConsistent verifies the consistency property of a time matrix: if
// GSP a is faster than GSP b on any task, it is faster on all tasks.
// Returns the first violating (gspA, gspB, task) triple, or ok = true.
func IsTimeConsistent(t [][]float64) (gspA, gspB, task int, ok bool) {
	m := len(t)
	if m == 0 {
		return 0, 0, 0, true
	}
	n := len(t[0])
	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			sign := 0
			for j := 0; j < n; j++ {
				var s int
				switch {
				case t[a][j] < t[b][j]:
					s = -1
				case t[a][j] > t[b][j]:
					s = 1
				}
				if s == 0 {
					continue
				}
				if sign == 0 {
					sign = s
				} else if sign != s {
					return a, b, j, false
				}
			}
		}
	}
	return 0, 0, 0, true
}

// IsCostWorkloadMonotone verifies the paper's cost structure: tasks with
// larger workload cost strictly more on every GSP. Returns the first
// violating (gsp, taskA, taskB) triple, or ok = true.
func IsCostWorkloadMonotone(c [][]float64, p *workload.Program) (gsp, taskA, taskB int, ok bool) {
	for i := range c {
		for a := 0; a < p.N(); a++ {
			for b := 0; b < p.N(); b++ {
				if p.Tasks[a] > p.Tasks[b] && c[i][a] <= c[i][b] {
					return i, a, b, false
				}
			}
		}
	}
	return 0, 0, 0, true
}
