// Package grid models the Grid Service Providers and generates the
// simulation parameters of Table I of the paper: GSP speeds, execution-time
// matrices, Braun-style cost matrices, deadlines and payments.
//
// Conventions: matrices are indexed [gsp][task] to match the paper's
// t(T, G) = w(T)/s(G) presentation transposed into row-per-provider form,
// which is how the assignment solver consumes them.
package grid
