package grid

import (
	"math"
	"testing"
	"testing/quick"

	"gridvo/internal/workload"
	"gridvo/internal/xrand"
)

func testProgram(n int) *workload.Program {
	return workload.Synthetic(xrand.New(100), "T", n, 50000, 9000)
}

func TestGenerateGSPs(t *testing.T) {
	gsps := GenerateGSPs(xrand.New(1), 16)
	if len(gsps) != 16 {
		t.Fatalf("len = %d", len(gsps))
	}
	for i, g := range gsps {
		if g.ID != i {
			t.Fatalf("ID[%d] = %d", i, g.ID)
		}
		lo, hi := SpeedUnitGFLOPS*MinSpeedFactor, SpeedUnitGFLOPS*MaxSpeedFactor
		if g.SpeedGFLOPS < lo || g.SpeedGFLOPS >= hi {
			t.Fatalf("speed %v outside [%v,%v)", g.SpeedGFLOPS, lo, hi)
		}
		if g.Name == "" {
			t.Fatal("GSP without a name")
		}
	}
}

func TestGenerateGSPsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative m did not panic")
		}
	}()
	GenerateGSPs(xrand.New(1), -1)
}

func TestTimeMatrix(t *testing.T) {
	p := testProgram(10)
	gsps := GenerateGSPs(xrand.New(2), 4)
	tm := TimeMatrix(gsps, p)
	if len(tm) != 4 || len(tm[0]) != 10 {
		t.Fatalf("shape = %dx%d", len(tm), len(tm[0]))
	}
	for i, g := range gsps {
		for j, w := range p.Tasks {
			want := w / g.SpeedGFLOPS
			if math.Abs(tm[i][j]-want) > 1e-9 {
				t.Fatalf("t[%d][%d] = %v, want %v", i, j, tm[i][j], want)
			}
		}
	}
}

func TestTimeMatrixConsistent(t *testing.T) {
	// The paper requires the time matrix to be consistent: generated from
	// fixed workloads and per-GSP speeds, it always is.
	p := testProgram(30)
	gsps := GenerateGSPs(xrand.New(3), 8)
	tm := TimeMatrix(gsps, p)
	if a, b, j, ok := IsTimeConsistent(tm); !ok {
		t.Fatalf("time matrix inconsistent at GSPs %d,%d task %d", a, b, j)
	}
}

func TestTimeMatrixPanicsOnZeroSpeed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero speed did not panic")
		}
	}()
	TimeMatrix([]GSP{{ID: 0, SpeedGFLOPS: 0}}, testProgram(2))
}

func TestIsTimeConsistentDetectsViolation(t *testing.T) {
	bad := [][]float64{
		{1, 5},
		{2, 3}, // GSP 1 slower on task 0 but faster on task 1
	}
	if _, _, _, ok := IsTimeConsistent(bad); ok {
		t.Fatal("inconsistent matrix not detected")
	}
	if _, _, _, ok := IsTimeConsistent(nil); !ok {
		t.Fatal("empty matrix should be vacuously consistent")
	}
}

func TestCostMatrixRangeAndShape(t *testing.T) {
	p := testProgram(40)
	c := CostMatrix(xrand.New(4), 16, p)
	if len(c) != 16 || len(c[0]) != 40 {
		t.Fatalf("shape = %dx%d", len(c), len(c[0]))
	}
	for i := range c {
		for j := range c[i] {
			if c[i][j] < 1 || c[i][j] > MaxCost {
				t.Fatalf("cost[%d][%d] = %v outside [1,%v]", i, j, c[i][j], MaxCost)
			}
		}
	}
}

func TestCostMatrixWorkloadMonotone(t *testing.T) {
	p := testProgram(25)
	c := CostMatrix(xrand.New(5), 8, p)
	if g, a, b, ok := IsCostWorkloadMonotone(c, p); !ok {
		t.Fatalf("cost not workload-monotone: GSP %d tasks %d,%d (w=%v,%v c=%v,%v)",
			g, a, b, p.Tasks[a], p.Tasks[b], c[g][a], c[g][b])
	}
}

func TestCostMatrixUnrelatedAcrossGSPs(t *testing.T) {
	// For at least one task, the cheapest GSP should differ from the
	// cheapest GSP of another task — costs are not a pure row scaling.
	p := testProgram(60)
	c := CostMatrix(xrand.New(6), 16, p)
	argmin := func(j int) int {
		best := 0
		for i := range c {
			if c[i][j] < c[best][j] {
				best = i
			}
		}
		return best
	}
	first := argmin(0)
	varies := false
	for j := 1; j < p.N(); j++ {
		if argmin(j) != first {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("one GSP is cheapest for every task; costs look related")
	}
}

func TestCostMatrixMonotoneProperty(t *testing.T) {
	f := func(seed uint32, nRaw, mRaw uint8) bool {
		n := int(nRaw)%30 + 2
		m := int(mRaw)%8 + 1
		rng := xrand.New(uint64(seed))
		p := workload.Synthetic(rng.Split("prog"), "q", n, 1000, 8000)
		c := CostMatrix(rng.Split("cost"), m, p)
		_, _, _, ok := IsCostWorkloadMonotone(c, p)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlineRange(t *testing.T) {
	p := testProgram(1000)
	rng := xrand.New(7)
	for i := 0; i < 200; i++ {
		d := Deadline(rng, p)
		lo := MinDeadlineFactor * p.BaseRuntimeSec * 1000 / 1000
		hi := MaxDeadlineFactor * p.BaseRuntimeSec * 1000 / 1000
		if d < lo || d > hi {
			t.Fatalf("deadline %v outside [%v,%v]", d, lo, hi)
		}
	}
}

func TestPaymentRange(t *testing.T) {
	rng := xrand.New(8)
	for i := 0; i < 200; i++ {
		p := Payment(rng, 256)
		lo := MinPaymentFactor * MaxCost * 256
		hi := MaxPaymentFactor * MaxCost * 256
		if p < lo || p > hi {
			t.Fatalf("payment %v outside [%v,%v]", p, lo, hi)
		}
	}
}

func TestSpeeds(t *testing.T) {
	gsps := []GSP{{SpeedGFLOPS: 10}, {SpeedGFLOPS: 20}}
	s := Speeds(gsps)
	if len(s) != 2 || s[0] != 10 || s[1] != 20 {
		t.Fatalf("Speeds = %v", s)
	}
}

func TestSubRows(t *testing.T) {
	mat := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	got := SubRows(mat, []int{2, 0})
	if got[0][0] != 5 || got[1][1] != 2 {
		t.Fatalf("SubRows = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range SubRows did not panic")
		}
	}()
	SubRows(mat, []int{9})
}

func TestCostMatrixDeterministic(t *testing.T) {
	p := testProgram(20)
	a := CostMatrix(xrand.New(11), 4, p)
	b := CostMatrix(xrand.New(11), 4, p)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("cost matrix not deterministic")
			}
		}
	}
}
