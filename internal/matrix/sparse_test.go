package matrix

import (
	"math"
	"testing"

	"gridvo/internal/xrand"
)

// randomDense builds a rows×cols matrix with the given fill density and
// non-negative weights, mirroring what trust graphs feed the pipeline.
func randomDense(rng *xrand.RNG, rows, cols int, density float64) *Dense {
	m := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Bool(density) {
				m.Set(i, j, 1-rng.Float64())
			}
		}
	}
	return m
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestCSRRoundTrip(t *testing.T) {
	rng := xrand.New(7)
	for _, density := range []float64{0, 0.05, 0.3, 0.9, 1} {
		d := randomDense(rng, 9, 9, density)
		c := CSRFromDense(d)
		if c.NNZ() != d.NNZ() {
			t.Fatalf("density %v: NNZ %d != %d", density, c.NNZ(), d.NNZ())
		}
		back := c.Dense()
		if !back.Equal(d, 0) {
			t.Fatalf("density %v: round trip mismatch", density)
		}
		for i := 0; i < d.Rows(); i++ {
			for j := 0; j < d.Cols(); j++ {
				if math.Float64bits(c.At(i, j)) != math.Float64bits(d.At(i, j)) {
					t.Fatalf("At(%d,%d) = %v want %v", i, j, c.At(i, j), d.At(i, j))
				}
			}
		}
	}
}

func TestCSRMulVecBitwise(t *testing.T) {
	rng := xrand.New(11)
	for trial := 0; trial < 50; trial++ {
		rows, cols := 1+rng.IntN(12), 1+rng.IntN(12)
		d := randomDense(rng, rows, cols, rng.Float64())
		c := CSRFromDense(d)
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.Float64()
		}
		if !bitsEqual(d.MulVec(x), c.MulVec(x)) {
			t.Fatalf("trial %d: MulVec differs", trial)
		}
		xt := make([]float64, rows)
		for i := range xt {
			// Mix in exact zeros to exercise the skip path on both sides.
			if rng.Bool(0.3) {
				xt[i] = 0
			} else {
				xt[i] = rng.Float64()
			}
		}
		if !bitsEqual(d.TMulVec(xt), c.TMulVec(xt)) {
			t.Fatalf("trial %d: TMulVec differs", trial)
		}
		if !bitsEqual(d.RowSums(), c.RowSums()) {
			t.Fatalf("trial %d: RowSums differs", trial)
		}
	}
}

func TestCSRNormalizeRowsBitwise(t *testing.T) {
	rng := xrand.New(13)
	for _, uniform := range []bool{false, true} {
		for trial := 0; trial < 40; trial++ {
			n := 1 + rng.IntN(10)
			d := randomDense(rng, n, n, rng.Float64()*0.6) // sparse enough for zero rows
			c := CSRFromDense(d)
			zd := d.NormalizeRows(uniform)
			zc := c.NormalizeRows(uniform)
			if len(zd) != len(zc) {
				t.Fatalf("zero-row lists differ: %v vs %v", zd, zc)
			}
			for i := range zd {
				if zd[i] != zc[i] {
					t.Fatalf("zero-row lists differ: %v vs %v", zd, zc)
				}
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if math.Float64bits(d.At(i, j)) != math.Float64bits(c.At(i, j)) {
						t.Fatalf("uniform=%v trial %d: At(%d,%d) %v != %v",
							uniform, trial, i, j, d.At(i, j), c.At(i, j))
					}
				}
			}
			// The uniform patch must be materialized so TMulVec sees it.
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.Float64()
			}
			if !bitsEqual(d.TMulVec(x), c.TMulVec(x)) {
				t.Fatalf("uniform=%v trial %d: post-normalize TMulVec differs", uniform, trial)
			}
		}
	}
}

// TestCSRNormalizeSubnormal ports the PR 4 regression: a row whose sum is
// subnormal must normalize by direct division, not reciprocal multiply.
func TestCSRNormalizeSubnormal(t *testing.T) {
	tiny := math.SmallestNonzeroFloat64
	d := FromRows([][]float64{{tiny, tiny}, {0, 1}})
	c := CSRFromDense(d)
	c.NormalizeRows(true)
	for j := 0; j < 2; j++ {
		v := c.At(0, j)
		if math.IsInf(v, 0) || math.IsNaN(v) || v < 0 || v > 1 {
			t.Fatalf("subnormal row normalized to %v at col %d", v, j)
		}
	}
	if s := c.At(0, 0) + c.At(0, 1); math.Abs(s-1) > 1e-9 {
		t.Fatalf("subnormal row sums to %v, want 1", s)
	}
}

func TestCSRNormalizeUniformMaterializes(t *testing.T) {
	c := CSRFromDense(FromRows([][]float64{{0, 0, 0}, {1, 2, 1}, {0, 0, 0}}))
	zero := c.NormalizeRows(true)
	if len(zero) != 2 || zero[0] != 0 || zero[1] != 2 {
		t.Fatalf("zero rows = %v, want [0 2]", zero)
	}
	if c.NNZ() != 3+2*3 {
		t.Fatalf("NNZ = %d after materializing uniform rows, want 9", c.NNZ())
	}
	u := 1.0 / 3
	for _, i := range []int{0, 2} {
		for j := 0; j < 3; j++ {
			if c.At(i, j) != u {
				t.Fatalf("At(%d,%d) = %v, want %v", i, j, c.At(i, j), u)
			}
		}
	}
}

func TestCSRSubmatrixBitwise(t *testing.T) {
	rng := xrand.New(17)
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.IntN(10)
		d := randomDense(rng, n, n, rng.Float64())
		c := CSRFromDense(d)
		k := 1 + rng.IntN(n)
		idx := rng.Perm(n)[:k]
		sd := d.Submatrix(idx).(*Dense)
		sc := c.Submatrix(idx).(*CSR)
		if !sc.Dense().Equal(sd, 0) {
			t.Fatalf("trial %d: Submatrix(%v) differs", trial, idx)
		}
	}
}

func TestCSRSubmatrixPanics(t *testing.T) {
	c := CSRFromDense(FromRows([][]float64{{1, 2}, {3, 4}}))
	for i, idx := range [][]int{{0, 0}, {5}, {-1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: Submatrix(%v) did not panic", i, idx)
				}
			}()
			c.Submatrix(idx)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Submatrix on non-square CSR did not panic")
			}
		}()
		NewCSR(2, 3).Submatrix([]int{0})
	}()
}

func TestBuilder(t *testing.T) {
	b := NewBuilder(3, 3)
	// Out-of-order insertion with a duplicate; (2,1) = 0.5 + 0.25.
	b.Add(2, 1, 0.5)
	b.Add(0, 2, 1)
	b.Add(2, 1, 0.25)
	b.Add(1, 0, 2)
	b.Add(2, 0, 3)
	c := b.Build()
	want := FromRows([][]float64{{0, 0, 1}, {2, 0, 0}, {3, 0.75, 0}})
	if !c.Dense().Equal(want, 0) {
		t.Fatalf("Build =\n%v want\n%v", c.Dense(), want)
	}
	if c.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4", c.NNZ())
	}
}

func TestBuilderDeterministicMerge(t *testing.T) {
	// Duplicate merge must sum in insertion order: with floats, order
	// changes bits. Two builders with identical insertion order must agree
	// bit for bit.
	vals := []float64{0.1, 0.7, 1e-17, 0.3}
	mk := func() *CSR {
		b := NewBuilder(1, 1)
		for _, v := range vals {
			b.Add(0, 0, v)
		}
		return b.Build()
	}
	if math.Float64bits(mk().At(0, 0)) != math.Float64bits(mk().At(0, 0)) {
		t.Fatal("duplicate merge is not deterministic")
	}
}

func TestBuilderPanics(t *testing.T) {
	b := NewBuilder(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range did not panic")
		}
	}()
	b.Add(2, 0, 1)
}

func TestRowNonZeros(t *testing.T) {
	d := FromRows([][]float64{{0, 5, 0, 7}, {0, 0, 0, 0}})
	c := CSRFromDense(d)
	for _, m := range []Matrix{d, c} {
		var cols []int
		var vals []float64
		RowNonZeros(m, 0, func(j int, v float64) {
			cols = append(cols, j)
			vals = append(vals, v)
		})
		if len(cols) != 2 || cols[0] != 1 || cols[1] != 3 || vals[0] != 5 || vals[1] != 7 {
			t.Fatalf("%T RowNonZeros = %v %v", m, cols, vals)
		}
		count := 0
		RowNonZeros(m, 1, func(int, float64) { count++ })
		if count != 0 {
			t.Fatalf("%T RowNonZeros on empty row visited %d entries", m, count)
		}
	}
}

func TestCSRAtPanics(t *testing.T) {
	c := NewCSR(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	c.At(0, 2)
}

// TestCSRTMulVecBandedBitwise pins the cache-blocked TMulVec path (wide
// matrices) to the reference row-sweep order bit for bit: banding may
// change memory locality, never arithmetic order.
func TestCSRTMulVecBandedBitwise(t *testing.T) {
	rows, cols := 60, tmulBandThreshold+12345
	rng := xrand.New(7)
	b := NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		for e := 0; e < 400; e++ {
			b.Add(i, rng.IntN(cols), rng.Float64())
		}
	}
	m := b.Build()
	if m.cols < tmulBandThreshold {
		t.Fatalf("matrix too narrow to hit the banded path: %d cols", m.cols)
	}
	x := make([]float64, rows)
	for i := range x {
		x[i] = rng.Normal(0, 1)
	}
	x[3], x[17] = 0, 0 // exercise the zero-row skip inside bands
	got := m.TMulVec(x)
	// Reference: the simple row sweep, the order dense uses.
	want := make([]float64, cols)
	for i := 0; i < rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			want[m.colIdx[k]] += m.val[k] * xi
		}
	}
	for j := range want {
		if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
			t.Fatalf("col %d: banded %v != reference %v", j, got[j], want[j])
		}
	}
}
