// Package matrix implements the small dense linear-algebra kernel used by
// the reputation subsystem: row-major float64 matrices, vector operations,
// norms, and the transpose-times-vector product at the heart of the power
// method (Algorithm 2 of the paper).
//
// The package is deliberately minimal — trust matrices in the VO formation
// problem are m×m with m on the order of tens (the paper uses m = 16), so
// clarity and exact reproducibility beat blocked or parallel kernels. All
// operations are deterministic (no data-dependent reordering of floating
// point sums beyond natural row order).
package matrix
