package matrix

import (
	"math"
	"testing"
	"testing/quick"

	"gridvo/internal/xrand"
)

func TestVecSumDot(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if VecSum(x) != 6 {
		t.Fatalf("VecSum = %v, want 6", VecSum(x))
	}
	if VecDot(x, y) != 32 {
		t.Fatalf("VecDot = %v, want 32", VecDot(x, y))
	}
	if VecSum(nil) != 0 {
		t.Fatal("VecSum(nil) != 0")
	}
}

func TestVecDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("VecDot mismatch did not panic")
		}
	}()
	VecDot([]float64{1}, []float64{1, 2})
}

func TestVecCloneIndependent(t *testing.T) {
	x := []float64{1, 2}
	c := VecClone(x)
	c[0] = 9
	if x[0] != 1 {
		t.Fatal("VecClone shares storage")
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if NormL1(x) != 7 {
		t.Fatalf("NormL1 = %v, want 7", NormL1(x))
	}
	if NormL2(x) != 5 {
		t.Fatalf("NormL2 = %v, want 5", NormL2(x))
	}
	if NormLInf(x) != 4 {
		t.Fatalf("NormLInf = %v, want 4", NormLInf(x))
	}
	if NormLInf(nil) != 0 {
		t.Fatal("NormLInf(nil) != 0")
	}
}

func TestVecNormalizeL1(t *testing.T) {
	x := VecNormalizeL1([]float64{1, 3})
	if !VecEqual(x, []float64{0.25, 0.75}, 1e-15) {
		t.Fatalf("VecNormalizeL1 = %v", x)
	}
	z := VecNormalizeL1([]float64{0, 0})
	if !VecEqual(z, []float64{0, 0}, 0) {
		t.Fatal("zero vector must stay zero")
	}
}

func TestVecDiffNormL2(t *testing.T) {
	d := VecDiffNormL2([]float64{1, 1}, []float64{4, 5})
	if math.Abs(d-5) > 1e-12 {
		t.Fatalf("VecDiffNormL2 = %v, want 5", d)
	}
}

func TestAvgRelErr(t *testing.T) {
	got := AvgRelErr([]float64{2, 3}, []float64{1, 3})
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("AvgRelErr = %v, want 0.5", got)
	}
	// Zero reference component falls back to absolute error.
	got = AvgRelErr([]float64{2}, []float64{0})
	if got != 2 {
		t.Fatalf("AvgRelErr with zero ref = %v, want 2", got)
	}
	if AvgRelErr(nil, nil) != 0 {
		t.Fatal("AvgRelErr(nil,nil) != 0")
	}
}

func TestArgMinMax(t *testing.T) {
	x := []float64{3, 1, 4, 1, 5}
	if ArgMin(x) != 1 {
		t.Fatalf("ArgMin = %d, want 1 (first of ties)", ArgMin(x))
	}
	if ArgMax(x) != 4 {
		t.Fatalf("ArgMax = %d, want 4", ArgMax(x))
	}
	if ArgMin(nil) != -1 || ArgMax(nil) != -1 {
		t.Fatal("Arg{Min,Max}(nil) != -1")
	}
}

func TestMinIndices(t *testing.T) {
	x := []float64{3, 1, 4, 1.0000001, 5}
	got := MinIndices(x, 1e-6)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("MinIndices = %v, want [1 3]", got)
	}
	if MinIndices(nil, 0) != nil {
		t.Fatal("MinIndices(nil) != nil")
	}
	exact := MinIndices([]float64{2, 2, 2}, 0)
	if len(exact) != 3 {
		t.Fatalf("MinIndices all-equal = %v, want all three", exact)
	}
}

func TestUniformVector(t *testing.T) {
	u := Uniform(4)
	for _, v := range u {
		if v != 0.25 {
			t.Fatalf("Uniform(4) = %v", u)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Uniform(0) did not panic")
		}
	}()
	Uniform(0)
}

func TestNormTriangleInequalityProperty(t *testing.T) {
	rng := xrand.New(7)
	f := func(nRaw uint8) bool {
		n := int(nRaw%16) + 1
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.Uniform(-10, 10)
			y[i] = rng.Uniform(-10, 10)
		}
		sum := make([]float64, n)
		for i := range sum {
			sum[i] = x[i] + y[i]
		}
		return NormL2(sum) <= NormL2(x)+NormL2(y)+1e-9 &&
			NormL1(sum) <= NormL1(x)+NormL1(y)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeL1Property(t *testing.T) {
	rng := xrand.New(8)
	f := func(nRaw uint8) bool {
		n := int(nRaw%16) + 1
		x := make([]float64, n)
		nonzero := false
		for i := range x {
			x[i] = rng.Uniform(0, 10)
			nonzero = nonzero || x[i] != 0
		}
		VecNormalizeL1(x)
		if !nonzero {
			return true
		}
		return math.Abs(NormL1(x)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
