package matrix

import (
	"fmt"
	"math"
)

// Vector helpers operate on plain []float64 slices; the reputation code
// passes probability vectors around and needs sums, norms and argmin/argmax
// with deterministic tie-breaking (lowest index wins), which the mechanism
// layer then optionally randomizes.

// VecSum returns the sum of the elements of x.
func VecSum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

// VecDot returns the dot product of x and y. It panics on length mismatch.
func VecDot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("matrix: VecDot length mismatch %d vs %d", len(x), len(y)))
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// VecClone returns a copy of x.
func VecClone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// VecScale multiplies x in place by s and returns x.
func VecScale(x []float64, s float64) []float64 {
	for i := range x {
		x[i] *= s
	}
	return x
}

// VecNormalizeL1 scales x in place so its L1 norm is 1 and returns x. A
// zero vector is left unchanged (there is no direction to preserve).
func VecNormalizeL1(x []float64) []float64 {
	s := 0.0
	for _, v := range x {
		s += math.Abs(v)
	}
	if s == 0 {
		return x
	}
	return VecScale(x, 1/s)
}

// NormL1 returns Σ|xᵢ|.
func NormL1(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// NormL2 returns the Euclidean norm of x.
func NormL2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormLInf returns max|xᵢ| (0 for an empty vector).
func NormLInf(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// VecDiffNormL2 returns ‖x−y‖₂ without allocating. It panics on length
// mismatch. This is the δ of Algorithm 2 line 6.
func VecDiffNormL2(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("matrix: VecDiffNormL2 length mismatch %d vs %d", len(x), len(y)))
	}
	s := 0.0
	for i, v := range x {
		d := v - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// AvgRelErr returns the average of |xᵢ−yᵢ|/|yᵢ| over components with
// yᵢ ≠ 0; components where yᵢ == 0 contribute |xᵢ| instead (absolute
// error), so the metric is defined for every input. This is the "average
// relative error" stopping rule the paper's prose describes.
func AvgRelErr(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("matrix: AvgRelErr length mismatch %d vs %d", len(x), len(y)))
	}
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for i, v := range x {
		if y[i] != 0 {
			s += math.Abs(v-y[i]) / math.Abs(y[i])
		} else {
			s += math.Abs(v)
		}
	}
	return s / float64(len(x))
}

// ArgMin returns the index of the smallest element, breaking ties toward
// the lowest index. It returns -1 for an empty vector.
func ArgMin(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i, v := range x {
		if v < x[best] {
			best = i
		}
	}
	return best
}

// ArgMax returns the index of the largest element, breaking ties toward the
// lowest index. It returns -1 for an empty vector.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}

// MinIndices returns every index whose value is within tol of the minimum.
// The mechanism uses this to collect reputation ties before random
// tie-breaking. It returns nil for an empty vector.
func MinIndices(x []float64, tol float64) []int {
	if len(x) == 0 {
		return nil
	}
	minV := x[0]
	for _, v := range x[1:] {
		if v < minV {
			minV = v
		}
	}
	var out []int
	for i, v := range x {
		if v-minV <= tol {
			out = append(out, i)
		}
	}
	return out
}

// VecEqual reports whether the two vectors have the same length and all
// elements within tol.
func VecEqual(x, y []float64, tol float64) bool {
	if len(x) != len(y) {
		return false
	}
	for i, v := range x {
		if math.Abs(v-y[i]) > tol {
			return false
		}
	}
	return true
}

// Uniform returns the length-n vector with every entry 1/n (the power
// method's starting point, Algorithm 2 line 3). It panics if n <= 0.
func Uniform(n int) []float64 {
	if n <= 0 {
		panic("matrix: Uniform requires n > 0")
	}
	x := make([]float64, n)
	u := 1 / float64(n)
	for i := range x {
		x[i] = u
	}
	return x
}
