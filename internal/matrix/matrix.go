package matrix

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix of float64 values.
type Dense struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// NewDense returns a zero-valued rows×cols matrix. It panics if either
// dimension is negative.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("matrix: NewDense with negative dimension")
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equally long rows. It panics if
// the rows are ragged.
func FromRows(rows [][]float64) *Dense {
	r := len(rows)
	if r == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("matrix: FromRows row %d has %d entries, want %d", i, len(row), c))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of bounds for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of bounds for %dx%d matrix", i, m.rows, m.cols))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: col %d out of bounds for %dx%d matrix", j, m.rows, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Dense) Transpose() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*m.rows+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// MulVec computes y = A·x for a square or rectangular A; x must have length
// Cols. The result has length Rows.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("matrix: MulVec with len(x)=%d, want %d", len(x), m.cols))
	}
	y := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for j, a := range row {
			s += a * x[j]
		}
		y[i] = s
	}
	return y
}

// TMulVec computes y = Aᵀ·x without materializing the transpose; x must have
// length Rows. The result has length Cols. This is the power-method kernel:
// x^{q+1} = Aᵀ x^q (eq. 5 of the paper).
func (m *Dense) TMulVec(x []float64) []float64 {
	if len(x) != m.rows {
		panic(fmt.Sprintf("matrix: TMulVec with len(x)=%d, want %d", len(x), m.rows))
	}
	y := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, a := range row {
			y[j] += a * xi
		}
	}
	return y
}

// Mul returns the matrix product A·B. It panics on dimension mismatch.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("matrix: Mul dimension mismatch %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewDense(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			orow := out.data[i*b.cols : (i+1)*b.cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// Scale multiplies every element in place by s and returns m for chaining.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// RowSums returns the vector of per-row sums.
func (m *Dense) RowSums() []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		for _, v := range m.data[i*m.cols : (i+1)*m.cols] {
			s += v
		}
		out[i] = s
	}
	return out
}

// NormalizeRows scales each row in place so it sums to 1. Rows whose sum is
// zero (no outgoing trust) are replaced according to fallback: if uniform is
// true the row becomes the uniform distribution 1/cols (the standard
// stochastic-matrix "dangling node" fix); otherwise it is left all-zero,
// producing a substochastic matrix. Returns the indices of the rows that
// were zero.
func (m *Dense) NormalizeRows(uniform bool) []int {
	var zeroRows []int
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for _, v := range row {
			s += v
		}
		if s == 0 {
			zeroRows = append(zeroRows, i)
			if uniform && m.cols > 0 {
				u := 1 / float64(m.cols)
				for j := range row {
					row[j] = u
				}
			}
			continue
		}
		// Divide directly rather than multiplying by 1/s: for subnormal
		// sums the reciprocal overflows to +Inf, turning a tiny-but-valid
		// trust row into Inf/NaN. v/s with 0 ≤ v ≤ s is always in [0,1].
		for j := range row {
			row[j] /= s
		}
	}
	return zeroRows
}

// NNZ returns the number of nonzero elements. Unlike CSR, Dense does not
// track this incrementally; the count is an O(rows·cols) scan.
func (m *Dense) NNZ() int {
	c := 0
	for _, v := range m.data {
		if v != 0 {
			c++
		}
	}
	return c
}

// Submatrix returns the matrix induced by keeping the given row/column
// indices, in the given order. It panics if idx contains an out-of-range or
// duplicate index. The receiver must be square (trust matrices always are).
// The result is always a *Dense; the Matrix return type satisfies the
// format-agnostic interface.
func (m *Dense) Submatrix(idx []int) Matrix {
	if m.rows != m.cols {
		panic("matrix: Submatrix requires a square matrix")
	}
	seen := make(map[int]bool, len(idx))
	for _, v := range idx {
		if v < 0 || v >= m.rows {
			panic(fmt.Sprintf("matrix: Submatrix index %d out of range [0,%d)", v, m.rows))
		}
		if seen[v] {
			panic(fmt.Sprintf("matrix: Submatrix duplicate index %d", v))
		}
		seen[v] = true
	}
	out := NewDense(len(idx), len(idx))
	for i, ri := range idx {
		for j, cj := range idx {
			out.data[i*len(idx)+j] = m.data[ri*m.cols+cj]
		}
	}
	return out
}

// Equal reports whether m and b have identical shape and all elements are
// within tol of each other.
func (m *Dense) Equal(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		sb.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%.4g", m.data[i*m.cols+j])
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}
