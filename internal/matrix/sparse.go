package matrix

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
)

// Matrix is the format-agnostic contract the reputation pipeline is written
// against. Dense and CSR both implement it; consumers that only multiply,
// normalize, and slice never need to know which representation backs the
// trust graph.
//
// Implementations must agree bitwise, not just approximately: for any Dense
// d and the CSR holding exactly d's nonzero entries, every method below must
// return bit-identical float64 values. This holds because the pipeline's
// values are non-negative, so skipping zero terms never flips a sign or
// perturbs a partial sum (x + 0 == x bitwise for x ≥ 0), provided entries
// are visited in the same (row, then column) order — which is why CSR keeps
// columns sorted within each row.
type Matrix interface {
	// Rows returns the number of rows.
	Rows() int
	// Cols returns the number of columns.
	Cols() int
	// At returns the element at row i, column j.
	At(i, j int) float64
	// MulVec computes y = A·x; x must have length Cols.
	MulVec(x []float64) []float64
	// TMulVec computes y = Aᵀ·x without materializing the transpose; x must
	// have length Rows. This is the power-method kernel (eq. 5).
	TMulVec(x []float64) []float64
	// RowSums returns the vector of per-row sums.
	RowSums() []float64
	// NormalizeRows scales each row in place to sum 1, patching zero rows
	// per uniform, and returns the indices of the zero rows (see
	// Dense.NormalizeRows for the exact contract).
	NormalizeRows(uniform bool) []int
	// Submatrix returns the matrix induced by keeping the given row/column
	// indices, in the given order; the receiver must be square.
	Submatrix(idx []int) Matrix
	// NNZ returns the number of stored nonzero entries.
	NNZ() int
}

// Compile-time checks that both formats satisfy the interface.
var (
	_ Matrix = (*Dense)(nil)
	_ Matrix = (*CSR)(nil)
)

// CSR is a compressed-sparse-row matrix: row i's entries live at positions
// rowPtr[i] .. rowPtr[i+1] of colIdx/val, with strictly ascending column
// indices inside each row. The ascending-column invariant is load-bearing:
// it makes every accumulation visit entries in the same order a dense
// row-major traversal would, which keeps CSR results bitwise identical to
// Dense (see the Matrix contract).
type CSR struct {
	rows, cols int
	rowPtr     []int // len rows+1
	colIdx     []int // len nnz
	val        []float64

	// tmu guards tcache, the lazily built transposed row-banded layout
	// backing TMulVec on wide matrices. The cache never changes the
	// numbers — only memory locality — and is dropped by every
	// structure-producing operation (Clone, Submatrix, NormalizeRows
	// rebuilds) by virtue of those constructing fresh values.
	tmu    sync.Mutex
	tcache *cscBands
}

// NewCSR returns an empty (all-zero) rows×cols CSR matrix. It panics if
// either dimension is negative.
func NewCSR(rows, cols int) *CSR {
	if rows < 0 || cols < 0 {
		panic("matrix: NewCSR with negative dimension")
	}
	return &CSR{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
}

// NewCSRRaw wraps pre-built CSR slices without copying: rowPtr must have
// length rows+1, start at 0, end at len(val), and be nondecreasing; colIdx
// must be strictly ascending within each row with in-range columns; colIdx
// and val must have equal length. The caller relinquishes ownership of the
// slices. Validation is O(nnz) and panics on violation, since a malformed
// structure would silently break the bitwise-identity contract.
func NewCSRRaw(rows, cols int, rowPtr, colIdx []int, val []float64) *CSR {
	if rows < 0 || cols < 0 {
		panic("matrix: NewCSRRaw with negative dimension")
	}
	if len(rowPtr) != rows+1 || rowPtr[0] != 0 || rowPtr[rows] != len(val) || len(colIdx) != len(val) {
		panic("matrix: NewCSRRaw with inconsistent structure")
	}
	for i := 0; i < rows; i++ {
		if rowPtr[i+1] < rowPtr[i] {
			panic("matrix: NewCSRRaw with decreasing rowPtr")
		}
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			if colIdx[k] < 0 || colIdx[k] >= cols {
				panic(fmt.Sprintf("matrix: NewCSRRaw column %d out of range [0,%d)", colIdx[k], cols))
			}
			if k > rowPtr[i] && colIdx[k] <= colIdx[k-1] {
				panic(fmt.Sprintf("matrix: NewCSRRaw row %d columns not strictly ascending", i))
			}
		}
	}
	return &CSR{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.val) }

// At returns the element at row i, column j (0 when no entry is stored).
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of bounds for %dx%d matrix", i, j, m.rows, m.cols))
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	k := lo + sort.SearchInts(m.colIdx[lo:hi], j)
	if k < hi && m.colIdx[k] == j {
		return m.val[k]
	}
	return 0
}

// Clone returns a deep copy of the matrix.
func (m *CSR) Clone() *CSR {
	out := &CSR{
		rows:   m.rows,
		cols:   m.cols,
		rowPtr: append([]int(nil), m.rowPtr...),
		colIdx: append([]int(nil), m.colIdx...),
		val:    append([]float64(nil), m.val...),
	}
	return out
}

// MulVec computes y = A·x; x must have length Cols.
func (m *CSR) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("matrix: MulVec with len(x)=%d, want %d", len(x), m.cols))
	}
	y := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k] * x[m.colIdx[k]]
		}
		y[i] = s
	}
	return y
}

// TMulVec computes y = Aᵀ·x without materializing the transpose; x must have
// length Rows. Rows are visited in ascending order and entries within a row
// in ascending column order, matching Dense.TMulVec's accumulation order
// exactly, so results are bitwise identical on equal inputs.
// tmulBandRows is the row-band height of the cache-blocked TMulVec path:
// 1<<15 source slots = 256 KiB of x per band, sized to stay L2-resident.
// tmulBandThreshold gates the blocked path to matrices whose output
// vector overflows that budget — below it the simple row sweep is faster
// and the transposed side structure is not worth building.
const (
	tmulBandRows      = 1 << 15
	tmulBandThreshold = 1 << 17
)

// cscBands is a transposed copy of a CSR's entries grouped into row
// bands: band b holds the entries of rows [b·tmulBandRows,
// (b+1)·tmulBandRows), sorted by (column, row) and packed as
// key = column<<16 | rowOffsetWithinBand. Within a band, TMulVec reads x
// only inside the band's 256 KiB window and writes y in ascending column
// order — both cache-friendly — while every output slot y[j] still
// receives its contributions in globally ascending row order (bands
// ascend, rows ascend within a band), i.e. exactly the dense row-sweep
// order. The blocked product is therefore bitwise identical to the
// simple path for every input, not merely close.
type cscBands struct {
	bandPtr []int // band b entries occupy [bandPtr[b], bandPtr[b+1])
	key     []uint64
	val     []float64
}

// tBands returns the lazily built transposed layout, constructing it on
// first use. The per-band sort is an LSD radix over the column bytes —
// stable, so the CSR's ascending-row entry order survives per column —
// chosen over a counting sort across all columns because its 256-bucket
// passes write sequentially (a whole-column scatter would repeat the very
// cache behavior this structure exists to avoid). O(nnz · colBytes) time,
// O(nnz) extra memory.
func (m *CSR) tBands() *cscBands {
	m.tmu.Lock()
	defer m.tmu.Unlock()
	if m.tcache != nil {
		return m.tcache
	}
	nnz := len(m.val)
	nb := (m.rows + tmulBandRows - 1) / tmulBandRows
	t := &cscBands{
		bandPtr: make([]int, nb+1),
		key:     make([]uint64, nnz),
		val:     make([]float64, nnz),
	}
	// Rows are stored in ascending order, so each band's entries are
	// already contiguous in the CSR arrays.
	maxBand := 0
	for b := 0; b < nb; b++ {
		hiRow := (b + 1) * tmulBandRows
		if hiRow > m.rows {
			hiRow = m.rows
		}
		t.bandPtr[b+1] = m.rowPtr[hiRow]
		if l := t.bandPtr[b+1] - t.bandPtr[b]; l > maxBand {
			maxBand = l
		}
	}
	colBits := bits.Len(uint(m.cols - 1))
	ks := make([]uint64, maxBand)
	vs := make([]float64, maxBand)
	var count [256]int
	for b := 0; b < nb; b++ {
		lo, hi := t.bandPtr[b], t.bandPtr[b+1]
		n := hi - lo
		if n == 0 {
			continue
		}
		base := b * tmulBandRows
		hiRow := base + tmulBandRows
		if hiRow > m.rows {
			hiRow = m.rows
		}
		p := lo
		for i := base; i < hiRow; i++ {
			off := uint64(i - base)
			for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
				t.key[p] = uint64(m.colIdx[k])<<16 | off
				t.val[p] = m.val[k]
				p++
			}
		}
		src, sv := t.key[lo:hi], t.val[lo:hi]
		dst, dv := ks[:n], vs[:n]
		for shift := 0; shift < colBits; shift += 8 {
			s := uint(16 + shift)
			count = [256]int{}
			for _, k := range src {
				count[(k>>s)&0xff]++
			}
			run := 0
			for c := 0; c < 256; c++ {
				cc := count[c]
				count[c] = run
				run += cc
			}
			for idx, k := range src {
				c := (k >> s) & 0xff
				dst[count[c]] = k
				dv[count[c]] = sv[idx]
				count[c]++
			}
			src, dst = dst, src
			sv, dv = dv, sv
		}
		if &src[0] != &t.key[lo] {
			copy(t.key[lo:hi], src)
			copy(t.val[lo:hi], sv)
		}
	}
	m.tcache = t
	return t
}

// invalidateT drops the transposed cache after an in-place mutation.
func (m *CSR) invalidateT() {
	m.tmu.Lock()
	m.tcache = nil
	m.tmu.Unlock()
}

func (m *CSR) TMulVec(x []float64) []float64 {
	if len(x) != m.rows {
		panic(fmt.Sprintf("matrix: TMulVec with len(x)=%d, want %d", len(x), m.rows))
	}
	y := make([]float64, m.cols)
	if m.cols >= tmulBandThreshold {
		t := m.tBands()
		for b := 0; b+1 < len(t.bandPtr); b++ {
			base := b * tmulBandRows
			for p := t.bandPtr[b]; p < t.bandPtr[b+1]; p++ {
				k := t.key[p]
				xi := x[base+int(k&0xffff)]
				if xi == 0 {
					continue
				}
				y[k>>16] += t.val[p] * xi
			}
		}
		return y
	}
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			y[m.colIdx[k]] += m.val[k] * xi
		}
	}
	return y
}

// RowSums returns the vector of per-row sums.
func (m *CSR) RowSums() []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k]
		}
		out[i] = s
	}
	return out
}

// NormalizeRows scales each row in place so it sums to 1 and returns the
// indices of the rows whose sum was zero. When uniform is true, zero rows
// are MATERIALIZED as explicit full rows of 1/cols entries — the structure
// is rebuilt so the patched rows participate in every later traversal at
// their natural position, keeping TMulVec/MulVec bitwise identical to the
// dense dangling fix. Dangling rows are rare in trust graphs (a GSP with no
// outgoing trust), so the extra cols entries per patched row are cheap.
//
// Like the dense version, nonzero rows divide by the sum directly rather
// than multiplying by its reciprocal: for subnormal sums 1/s overflows to
// +Inf, while v/s with 0 ≤ v ≤ s is always in [0,1].
func (m *CSR) NormalizeRows(uniform bool) []int {
	m.invalidateT() // values change in place; drop the transposed cache
	var zeroRows []int
	for i := 0; i < m.rows; i++ {
		s := 0.0
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k]
		}
		if s == 0 {
			zeroRows = append(zeroRows, i)
			continue
		}
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			m.val[k] /= s
		}
	}
	if !uniform || len(zeroRows) == 0 || m.cols == 0 {
		return zeroRows
	}
	// Rebuild with the zero rows patched to explicit uniform rows. A row
	// with a zero sum can still hold entries (explicit zeros, or values
	// cancelling to zero never occur here since weights are non-negative);
	// those entries are replaced wholesale, mirroring the dense overwrite.
	u := 1 / float64(m.cols)
	zeroSet := make(map[int]bool, len(zeroRows))
	kept := 0
	for _, i := range zeroRows {
		zeroSet[i] = true
	}
	for i := 0; i < m.rows; i++ {
		if !zeroSet[i] {
			kept += m.rowPtr[i+1] - m.rowPtr[i]
		}
	}
	nnz := kept + len(zeroRows)*m.cols
	rowPtr := make([]int, m.rows+1)
	colIdx := make([]int, 0, nnz)
	val := make([]float64, 0, nnz)
	for i := 0; i < m.rows; i++ {
		if zeroSet[i] {
			for j := 0; j < m.cols; j++ {
				colIdx = append(colIdx, j)
				val = append(val, u)
			}
		} else {
			colIdx = append(colIdx, m.colIdx[m.rowPtr[i]:m.rowPtr[i+1]]...)
			val = append(val, m.val[m.rowPtr[i]:m.rowPtr[i+1]]...)
		}
		rowPtr[i+1] = len(colIdx)
	}
	m.rowPtr, m.colIdx, m.val = rowPtr, colIdx, val
	return zeroRows
}

// Submatrix returns the matrix induced by keeping the given row/column
// indices, in the given order. It panics if idx contains an out-of-range or
// duplicate index. The receiver must be square (trust matrices always are).
func (m *CSR) Submatrix(idx []int) Matrix {
	if m.rows != m.cols {
		panic("matrix: Submatrix requires a square matrix")
	}
	pos := make([]int, m.cols)
	for j := range pos {
		pos[j] = -1
	}
	for k, v := range idx {
		if v < 0 || v >= m.rows {
			panic(fmt.Sprintf("matrix: Submatrix index %d out of range [0,%d)", v, m.rows))
		}
		if pos[v] >= 0 {
			panic(fmt.Sprintf("matrix: Submatrix duplicate index %d", v))
		}
		pos[v] = k
	}
	out := NewCSR(len(idx), len(idx))
	type entry struct {
		col int
		v   float64
	}
	var scratch []entry
	for ni, ri := range idx {
		scratch = scratch[:0]
		for k := m.rowPtr[ri]; k < m.rowPtr[ri+1]; k++ {
			if nj := pos[m.colIdx[k]]; nj >= 0 {
				scratch = append(scratch, entry{col: nj, v: m.val[k]})
			}
		}
		// idx may reorder columns, so re-sort to restore the ascending
		// invariant within the new row.
		sort.Slice(scratch, func(a, b int) bool { return scratch[a].col < scratch[b].col })
		for _, e := range scratch {
			out.colIdx = append(out.colIdx, e.col)
			out.val = append(out.val, e.v)
		}
		out.rowPtr[ni+1] = len(out.val)
	}
	return out
}

// Dense materializes the CSR matrix as a Dense.
func (m *CSR) Dense() *Dense {
	out := NewDense(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			out.Set(i, m.colIdx[k], m.val[k])
		}
	}
	return out
}

// CSRFromDense converts a Dense matrix to CSR, keeping only its nonzero
// entries. Note an explicit -0 entry is dropped (it compares equal to zero);
// reading it back through At yields +0, which is ==-equal but not
// bit-identical — trust weights are never negative, so this cannot occur in
// the pipeline.
func CSRFromDense(d *Dense) *CSR {
	out := NewCSR(d.Rows(), d.Cols())
	for i := 0; i < d.rows; i++ {
		row := d.data[i*d.cols : (i+1)*d.cols]
		for j, v := range row {
			if v != 0 {
				out.colIdx = append(out.colIdx, j)
				out.val = append(out.val, v)
			}
		}
		out.rowPtr[i+1] = len(out.val)
	}
	return out
}

// String renders the matrix for debugging.
func (m *CSR) String() string {
	return fmt.Sprintf("matrix.CSR{%dx%d, nnz=%d}", m.rows, m.cols, len(m.val))
}

// Builder accumulates (row, col, value) triplets in any order and finalizes
// them into a CSR matrix with sorted columns and deterministically merged
// duplicates. It is the construction path for callers that discover entries
// out of order (delta batches, transposes, file loads).
type Builder struct {
	rows, cols int
	row, col   []int
	val        []float64
}

// NewBuilder returns a Builder for a rows×cols matrix. It panics if either
// dimension is negative.
func NewBuilder(rows, cols int) *Builder {
	if rows < 0 || cols < 0 {
		panic("matrix: NewBuilder with negative dimension")
	}
	return &Builder{rows: rows, cols: cols}
}

// Add records a triplet. Duplicate (i,j) coordinates are summed in insertion
// order at Build time, which keeps the result independent of map iteration
// or other nondeterminism. It panics on out-of-range coordinates.
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("matrix: Builder.Add (%d,%d) out of bounds for %dx%d matrix", i, j, b.rows, b.cols))
	}
	b.row = append(b.row, i)
	b.col = append(b.col, j)
	b.val = append(b.val, v)
}

// Build finalizes the accumulated triplets into a CSR matrix. Triplets are
// ordered by (row, col) with a stable sort, so duplicates merge by summing
// in insertion order — fully deterministic regardless of Add order for
// distinct coordinates. Entries whose merged value is exactly zero are kept
// as explicit zeros (callers that need pruning skip zeros before Add). The
// Builder may be reused after Build; previously added triplets remain.
func (b *Builder) Build() *CSR {
	order := make([]int, len(b.val))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		ix, iy := order[x], order[y]
		if b.row[ix] != b.row[iy] {
			return b.row[ix] < b.row[iy]
		}
		return b.col[ix] < b.col[iy]
	})
	out := NewCSR(b.rows, b.cols)
	prevRow, prevCol := -1, -1
	for _, k := range order {
		r, c, v := b.row[k], b.col[k], b.val[k]
		if r == prevRow && c == prevCol {
			out.val[len(out.val)-1] += v
			continue
		}
		out.colIdx = append(out.colIdx, c)
		out.val = append(out.val, v)
		prevRow, prevCol = r, c
		out.rowPtr[r+1]++
	}
	// Convert per-row counts into cumulative offsets.
	for i := 1; i <= b.rows; i++ {
		out.rowPtr[i] += out.rowPtr[i-1]
	}
	return out
}

// RowNonZeros calls fn for each stored nonzero entry (j, v) of row i in
// ascending column order. For Dense it skips zero elements. It is the
// format-agnostic replacement for materializing rows via Dense.Row.
func RowNonZeros(m Matrix, i int, fn func(j int, v float64)) {
	switch t := m.(type) {
	case *CSR:
		if i < 0 || i >= t.rows {
			panic(fmt.Sprintf("matrix: row %d out of bounds for %dx%d matrix", i, t.rows, t.cols))
		}
		for k := t.rowPtr[i]; k < t.rowPtr[i+1]; k++ {
			if t.val[k] != 0 {
				fn(t.colIdx[k], t.val[k])
			}
		}
	case *Dense:
		if i < 0 || i >= t.rows {
			panic(fmt.Sprintf("matrix: row %d out of bounds for %dx%d matrix", i, t.rows, t.cols))
		}
		row := t.data[i*t.cols : (i+1)*t.cols]
		for j, v := range row {
			if v != 0 {
				fn(j, v)
			}
		}
	default:
		for j := 0; j < m.Cols(); j++ {
			if v := m.At(i, j); v != 0 {
				fn(j, v)
			}
		}
	}
}
