package matrix

import (
	"math"
	"testing"
	"testing/quick"

	"gridvo/internal/xrand"
)

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestSetAtAdd(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 1, 3.5)
	m.Add(0, 1, 1.5)
	if got := m.At(0, 1); got != 5 {
		t.Fatalf("At(0,1) = %v, want 5", got)
	}
	if got := m.At(1, 0); got != 0 {
		t.Fatalf("untouched element = %v, want 0", got)
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	cases := []func(){
		func() { NewDense(2, 2).At(2, 0) },
		func() { NewDense(2, 2).At(0, -1) },
		func() { NewDense(2, 2).Set(-1, 0, 1) },
		func() { NewDense(2, 2).Row(5) },
		func() { NewDense(2, 2).Col(5) },
		func() { NewDense(-1, 2) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 0) != 1 || m.At(0, 1) != 2 || m.At(1, 0) != 3 || m.At(1, 1) != 4 {
		t.Fatalf("FromRows mismatch: %v", m)
	}
	empty := FromRows(nil)
	if empty.Rows() != 0 || empty.Cols() != 0 {
		t.Fatal("FromRows(nil) is not 0x0")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestRowColCopies(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("Row returned a view, want a copy")
	}
	c := m.Col(1)
	if c[0] != 2 || c[1] != 4 {
		t.Fatalf("Col(1) = %v, want [2 4]", c)
	}
	c[0] = 99
	if m.At(0, 1) != 2 {
		t.Fatal("Col returned a view, want a copy")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose shape = %dx%d, want 3x2", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	y := m.MulVec([]float64{1, 1})
	want := []float64{3, 7, 11}
	if !VecEqual(y, want, 0) {
		t.Fatalf("MulVec = %v, want %v", y, want)
	}
}

func TestTMulVecMatchesExplicitTranspose(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 50; trial++ {
		r, c := rng.UniformInt(1, 8), rng.UniformInt(1, 8)
		m := NewDense(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				m.Set(i, j, rng.Uniform(-5, 5))
			}
		}
		x := make([]float64, r)
		for i := range x {
			x[i] = rng.Uniform(-5, 5)
		}
		got := m.TMulVec(x)
		want := m.Transpose().MulVec(x)
		if !VecEqual(got, want, 1e-12) {
			t.Fatalf("trial %d: TMulVec = %v, want %v", trial, got, want)
		}
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 0) {
		t.Fatalf("Mul =\n%v want\n%v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := xrand.New(2)
	m := NewDense(5, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			m.Set(i, j, rng.Float64())
		}
	}
	if !m.Mul(Identity(5)).Equal(m, 0) || !Identity(5).Mul(m).Equal(m, 0) {
		t.Fatal("identity is not a multiplicative unit")
	}
}

func TestMulDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul with mismatched shapes did not panic")
		}
	}()
	NewDense(2, 3).Mul(NewDense(2, 3))
}

func TestScaleAndRowSums(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.Scale(2)
	sums := m.RowSums()
	if sums[0] != 6 || sums[1] != 14 {
		t.Fatalf("RowSums after Scale = %v, want [6 14]", sums)
	}
}

func TestNormalizeRowsStochastic(t *testing.T) {
	m := FromRows([][]float64{{2, 2}, {0, 0}, {1, 3}})
	zero := m.NormalizeRows(true)
	if len(zero) != 1 || zero[0] != 1 {
		t.Fatalf("zero rows = %v, want [1]", zero)
	}
	for i := 0; i < 3; i++ {
		s := VecSum(m.Row(i))
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d sums to %v after normalization", i, s)
		}
	}
	if m.At(1, 0) != 0.5 || m.At(1, 1) != 0.5 {
		t.Fatalf("dangling row not uniform: %v", m.Row(1))
	}
}

func TestNormalizeRowsSubstochastic(t *testing.T) {
	m := FromRows([][]float64{{2, 2}, {0, 0}})
	m.NormalizeRows(false)
	if VecSum(m.Row(1)) != 0 {
		t.Fatal("substochastic mode must leave zero rows zero")
	}
}

func TestNormalizeRowsProperty(t *testing.T) {
	rng := xrand.New(3)
	f := func(nRaw uint8) bool {
		n := int(nRaw%10) + 1
		m := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Bool(0.5) {
					m.Set(i, j, rng.Uniform(0, 10))
				}
			}
		}
		m.NormalizeRows(true)
		for i := 0; i < n; i++ {
			if math.Abs(VecSum(m.Row(i))-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSubmatrix(t *testing.T) {
	m := FromRows([][]float64{
		{0, 1, 2, 3},
		{10, 11, 12, 13},
		{20, 21, 22, 23},
		{30, 31, 32, 33},
	})
	s := m.Submatrix([]int{3, 1}).(*Dense)
	want := FromRows([][]float64{{33, 31}, {13, 11}})
	if !s.Equal(want, 0) {
		t.Fatalf("Submatrix =\n%v want\n%v", s, want)
	}
}

func TestSubmatrixPanics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	for i, idx := range [][]int{{0, 0}, {5}, {-1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: Submatrix(%v) did not panic", i, idx)
				}
			}()
			m.Submatrix(idx)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Submatrix on non-square matrix did not panic")
			}
		}()
		NewDense(2, 3).Submatrix([]int{0})
	}()
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with the original")
	}
}

func TestEqualShapes(t *testing.T) {
	if NewDense(2, 2).Equal(NewDense(2, 3), 1) {
		t.Fatal("matrices of different shape reported equal")
	}
	a := FromRows([][]float64{{1}})
	b := FromRows([][]float64{{1.0000001}})
	if !a.Equal(b, 1e-3) {
		t.Fatal("near-equal matrices reported unequal within tol")
	}
	if a.Equal(b, 1e-12) {
		t.Fatal("distinct matrices reported equal with tight tol")
	}
}

func TestStringRendering(t *testing.T) {
	s := FromRows([][]float64{{1, 2}}).String()
	if s != "[1 2]\n" {
		t.Fatalf("String() = %q", s)
	}
}
