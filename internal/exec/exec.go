package exec

import (
	"container/heap"
	"fmt"
	"sort"

	"gridvo/internal/xrand"
)

// Provider is one VO member as the executor sees it.
type Provider struct {
	// SpeedGFLOPS is s(G): task seconds = workload / speed.
	SpeedGFLOPS float64
	// Reliability is the probability the provider honours its promise
	// for the whole run. With probability 1−Reliability it reneges at a
	// uniformly random fraction of the deadline window.
	Reliability float64
}

// Policy selects what happens to tasks orphaned by a failed provider.
type Policy int

const (
	// Reschedule moves orphaned tasks to the least-loaded surviving
	// provider (greedy, at failure time).
	Reschedule Policy = iota
	// Abandon drops orphaned tasks; the run then misses its contract.
	Abandon
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Reschedule:
		return "reschedule"
	case Abandon:
		return "abandon"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Options configure a simulation run.
type Options struct {
	// Deadline is the contract deadline in seconds (must be positive).
	Deadline float64
	// Policy for orphaned tasks; the zero value is Reschedule.
	Policy Policy
}

// Report is the outcome of one simulated execution.
type Report struct {
	// Completed reports whether every task finished by the deadline.
	Completed bool
	// MakespanSec is the completion time of the last finished task
	// (meaningful even on deadline misses).
	MakespanSec float64
	// TasksCompleted counts tasks that finished by the deadline.
	TasksCompleted int
	// Delivered[i] reports whether provider i honoured its promise
	// (did not renege) — the per-member outcome a trust history records.
	Delivered []bool
	// BusySec[i] is the total compute time provider i spent.
	BusySec []float64
	// Rescheduled counts tasks moved after provider failures.
	Rescheduled int
	// FailedProviders lists the indices that reneged, in failure order.
	FailedProviders []int
}

// Utilization returns BusySec[i]/deadline for each provider.
func (r *Report) Utilization(deadline float64) []float64 {
	out := make([]float64, len(r.BusySec))
	if deadline <= 0 {
		return out
	}
	for i, b := range r.BusySec {
		out[i] = b / deadline
	}
	return out
}

// event kinds on the virtual clock.
type eventKind int

const (
	evTaskDone eventKind = iota
	evFailure
)

type event struct {
	at       float64
	kind     eventKind
	provider int
	task     int // evTaskDone only
	seq      int // tie-break for determinism
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }

//gridvolint:ignore floatcmp heap comparator must be exact: epsilon ordering is intransitive
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	// Failures before completions at the same instant: a provider that
	// reneges at time t does not deliver the task finishing at t.
	if q[i].kind != q[j].kind {
		return q[i].kind == evFailure
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Run simulates executing the assignment. tasks[j] is the workload of task
// j in GFLOP; assign[j] is the provider index executing it. rng drives the
// failure draws; identical seeds give identical runs.
func Run(rng *xrand.RNG, tasks []float64, assign []int, providers []Provider, opts Options) (*Report, error) {
	k := len(providers)
	if opts.Deadline <= 0 {
		return nil, fmt.Errorf("exec: non-positive deadline %v", opts.Deadline)
	}
	if len(assign) != len(tasks) {
		return nil, fmt.Errorf("exec: %d assignments for %d tasks", len(assign), len(tasks))
	}
	for i, p := range providers {
		if p.SpeedGFLOPS <= 0 {
			return nil, fmt.Errorf("exec: provider %d has non-positive speed", i)
		}
		if p.Reliability < 0 || p.Reliability > 1 {
			return nil, fmt.Errorf("exec: provider %d reliability %v outside [0,1]", i, p.Reliability)
		}
	}

	// Per-provider FIFO queues of assigned tasks, longest first so the
	// big rocks land early (and rescheduling moves small remainders).
	queues := make([][]int, k)
	for j, g := range assign {
		if g < 0 || g >= k {
			return nil, fmt.Errorf("exec: task %d assigned to provider %d of %d", j, g, k)
		}
		queues[g] = append(queues[g], j)
	}
	for g := range queues {
		sort.SliceStable(queues[g], func(a, b int) bool {
			return tasks[queues[g][a]] > tasks[queues[g][b]]
		})
	}

	rep := &Report{
		Delivered: make([]bool, k),
		BusySec:   make([]float64, k),
	}
	for i := range rep.Delivered {
		rep.Delivered[i] = true
	}

	q := &eventQueue{}
	seq := 0
	push := func(e event) {
		e.seq = seq
		seq++
		heap.Push(q, e)
	}

	// Draw failures up front: provider i reneges at a uniform time in
	// (0, deadline) with probability 1 − reliability.
	alive := make([]bool, k)
	for i, p := range providers {
		alive[i] = true
		if !rng.Bool(p.Reliability) {
			push(event{at: rng.Uniform(0, opts.Deadline), kind: evFailure, provider: i})
		}
	}

	// Start each provider on its first task.
	busyUntil := make([]float64, k)
	current := make([]int, k) // task in flight, -1 when idle
	for i := range current {
		current[i] = -1
	}
	startNext := func(g int, now float64) {
		if !alive[g] || len(queues[g]) == 0 {
			return
		}
		t := queues[g][0]
		queues[g] = queues[g][1:]
		dur := tasks[t] / providers[g].SpeedGFLOPS
		current[g] = t
		busyUntil[g] = now + dur
		push(event{at: now + dur, kind: evTaskDone, provider: g, task: t})
	}
	for g := 0; g < k; g++ {
		startNext(g, 0)
	}

	remaining := len(tasks)
	for q.Len() > 0 && remaining > 0 {
		e := heap.Pop(q).(event)
		switch e.kind {
		case evFailure:
			if !alive[e.provider] {
				break
			}
			alive[e.provider] = false
			rep.Delivered[e.provider] = false
			rep.FailedProviders = append(rep.FailedProviders, e.provider)
			// Orphans: the in-flight task (its completion event is now
			// stale) plus the provider's queue.
			orphans := append([]int(nil), queues[e.provider]...)
			if current[e.provider] >= 0 {
				orphans = append(orphans, current[e.provider])
				// The busy time spent so far still counts as consumed.
				rep.BusySec[e.provider] += e.at - (busyUntil[e.provider] - tasks[current[e.provider]]/providers[e.provider].SpeedGFLOPS)
				current[e.provider] = -1
			}
			queues[e.provider] = nil
			if opts.Policy == Abandon {
				break
			}
			rep.Rescheduled += len(orphans)
			for _, t := range orphans {
				// Least-loaded surviving provider by projected finish.
				best := -1
				for g := 0; g < k; g++ {
					if !alive[g] {
						continue
					}
					if best == -1 || projectedFinish(g, busyUntil[g], queues[g], tasks, providers) <
						projectedFinish(best, busyUntil[best], queues[best], tasks, providers) {
						best = g
					}
				}
				if best == -1 {
					break // nobody left; tasks are lost
				}
				queues[best] = append(queues[best], t)
				if current[best] == -1 {
					startNext(best, e.at)
				}
			}
		case evTaskDone:
			g := e.provider
			if !alive[g] || current[g] != e.task {
				break // stale event from a failed provider
			}
			rep.BusySec[g] += tasks[e.task] / providers[g].SpeedGFLOPS
			current[g] = -1
			remaining--
			if e.at <= opts.Deadline {
				rep.TasksCompleted++
			}
			if e.at > rep.MakespanSec {
				rep.MakespanSec = e.at
			}
			startNext(g, e.at)
		}
	}
	rep.Completed = rep.TasksCompleted == len(tasks) && rep.MakespanSec <= opts.Deadline
	return rep, nil
}

func projectedFinish(g int, busyUntil float64, queue []int, tasks []float64, providers []Provider) float64 {
	t := busyUntil
	for _, task := range queue {
		t += tasks[task] / providers[g].SpeedGFLOPS
	}
	return t
}
