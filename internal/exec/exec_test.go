package exec

import (
	"math"
	"testing"

	"gridvo/internal/xrand"
)

func reliable(speeds ...float64) []Provider {
	out := make([]Provider, len(speeds))
	for i, s := range speeds {
		out[i] = Provider{SpeedGFLOPS: s, Reliability: 1}
	}
	return out
}

func TestRunAllReliableSequentialTiming(t *testing.T) {
	// One provider, two tasks: makespan is the exact serial sum.
	tasks := []float64{100, 50}
	rep, err := Run(xrand.New(1), tasks, []int{0, 0}, reliable(10), Options{Deadline: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatal("run did not complete")
	}
	if math.Abs(rep.MakespanSec-15) > 1e-9 {
		t.Fatalf("makespan = %v, want 15", rep.MakespanSec)
	}
	if math.Abs(rep.BusySec[0]-15) > 1e-9 {
		t.Fatalf("busy = %v, want 15", rep.BusySec[0])
	}
	if rep.TasksCompleted != 2 || !rep.Delivered[0] {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRunParallelProviders(t *testing.T) {
	// Two equal providers, one task each: makespan is the max task time.
	tasks := []float64{100, 40}
	rep, err := Run(xrand.New(1), tasks, []int{0, 1}, reliable(10, 10), Options{Deadline: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || math.Abs(rep.MakespanSec-10) > 1e-9 {
		t.Fatalf("report = %+v", rep)
	}
	util := rep.Utilization(50)
	if math.Abs(util[0]-0.2) > 1e-9 || math.Abs(util[1]-0.08) > 1e-9 {
		t.Fatalf("utilization = %v", util)
	}
}

func TestRunDeadlineMiss(t *testing.T) {
	rep, err := Run(xrand.New(1), []float64{100}, []int{0}, reliable(10), Options{Deadline: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed {
		t.Fatal("missed deadline reported as completed")
	}
	if rep.TasksCompleted != 0 {
		t.Fatalf("late task counted as completed: %+v", rep)
	}
	if math.Abs(rep.MakespanSec-10) > 1e-9 {
		t.Fatalf("makespan = %v, want 10", rep.MakespanSec)
	}
}

func TestRunFailureWithReschedule(t *testing.T) {
	// Provider 1 always reneges mid-work (its two tasks span the whole
	// deadline window); the orphans must migrate to provider 0 and the
	// run still completes. A renege drawn *after* a provider's last task
	// would be moot — the promise was already honoured — so the slow
	// speed guarantees the interesting case.
	tasks := []float64{10, 10, 10, 10}
	providers := []Provider{
		{SpeedGFLOPS: 10, Reliability: 1},
		{SpeedGFLOPS: 0.02, Reliability: 0},
	}
	rep, err := Run(xrand.New(3), tasks, []int{0, 0, 1, 1}, providers, Options{Deadline: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("reschedule failed: %+v", rep)
	}
	if rep.Delivered[1] {
		t.Fatal("reneging provider marked as delivered")
	}
	if !rep.Delivered[0] {
		t.Fatal("surviving provider marked as failed")
	}
	if rep.Rescheduled == 0 {
		t.Fatal("no rescheduling recorded")
	}
	if len(rep.FailedProviders) != 1 || rep.FailedProviders[0] != 1 {
		t.Fatalf("failed providers = %v", rep.FailedProviders)
	}
}

func TestRunFailureWithAbandon(t *testing.T) {
	// Provider 1's single task spans the whole deadline window, so its
	// renege (drawn strictly inside the window) always interrupts it.
	tasks := []float64{10, 10}
	providers := []Provider{
		{SpeedGFLOPS: 10, Reliability: 1},
		{SpeedGFLOPS: 0.01, Reliability: 0},
	}
	rep, err := Run(xrand.New(4), tasks, []int{0, 1}, providers, Options{Deadline: 1000, Policy: Abandon})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed {
		t.Fatal("abandoned tasks cannot complete the run")
	}
	if rep.Rescheduled != 0 {
		t.Fatal("abandon policy rescheduled")
	}
	if rep.TasksCompleted != 1 {
		t.Fatalf("completed = %d, want 1", rep.TasksCompleted)
	}
}

func TestRunAllProvidersFail(t *testing.T) {
	providers := []Provider{
		{SpeedGFLOPS: 1e-6, Reliability: 0}, // so slow the failure always lands mid-task
		{SpeedGFLOPS: 1e-6, Reliability: 0},
	}
	rep, err := Run(xrand.New(5), []float64{10, 10}, []int{0, 1}, providers, Options{Deadline: 100})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed {
		t.Fatal("run completed with every provider reneging")
	}
	if len(rep.FailedProviders) != 2 {
		t.Fatalf("failures = %v", rep.FailedProviders)
	}
}

func TestRunDeterministic(t *testing.T) {
	tasks := make([]float64, 40)
	assign := make([]int, 40)
	rng := xrand.New(6)
	for i := range tasks {
		tasks[i] = rng.Uniform(10, 100)
		assign[i] = i % 3
	}
	providers := []Provider{
		{SpeedGFLOPS: 5, Reliability: 0.7},
		{SpeedGFLOPS: 8, Reliability: 0.7},
		{SpeedGFLOPS: 12, Reliability: 0.7},
	}
	a, err := Run(xrand.New(7), tasks, assign, providers, Options{Deadline: 500})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(xrand.New(7), tasks, assign, providers, Options{Deadline: 500})
	if err != nil {
		t.Fatal(err)
	}
	if a.MakespanSec != b.MakespanSec || a.TasksCompleted != b.TasksCompleted ||
		a.Rescheduled != b.Rescheduled {
		t.Fatal("execution not deterministic under identical seeds")
	}
}

func TestRunValidation(t *testing.T) {
	cases := []struct {
		name string
		run  func() error
	}{
		{"zero deadline", func() error {
			_, err := Run(xrand.New(1), []float64{1}, []int{0}, reliable(1), Options{})
			return err
		}},
		{"length mismatch", func() error {
			_, err := Run(xrand.New(1), []float64{1, 2}, []int{0}, reliable(1), Options{Deadline: 1})
			return err
		}},
		{"bad provider index", func() error {
			_, err := Run(xrand.New(1), []float64{1}, []int{5}, reliable(1), Options{Deadline: 1})
			return err
		}},
		{"zero speed", func() error {
			_, err := Run(xrand.New(1), []float64{1}, []int{0}, []Provider{{}}, Options{Deadline: 1})
			return err
		}},
		{"bad reliability", func() error {
			_, err := Run(xrand.New(1), []float64{1}, []int{0},
				[]Provider{{SpeedGFLOPS: 1, Reliability: 2}}, Options{Deadline: 1})
			return err
		}},
	}
	for _, c := range cases {
		if c.run() == nil {
			t.Fatalf("%s accepted", c.name)
		}
	}
}

func TestRunEmpty(t *testing.T) {
	rep, err := Run(xrand.New(1), nil, nil, nil, Options{Deadline: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.MakespanSec != 0 {
		t.Fatalf("empty run = %+v", rep)
	}
}

func TestBusyTimeConservation(t *testing.T) {
	// With fully reliable providers, total busy time equals the sum of
	// task durations.
	tasks := []float64{30, 50, 20, 40}
	assign := []int{0, 1, 0, 1}
	providers := reliable(10, 20)
	rep, err := Run(xrand.New(8), tasks, assign, providers, Options{Deadline: 100})
	if err != nil {
		t.Fatal(err)
	}
	want := (30.0+20.0)/10 + (50.0+40.0)/20
	got := rep.BusySec[0] + rep.BusySec[1]
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("busy total = %v, want %v", got, want)
	}
}

func TestPolicyString(t *testing.T) {
	if Reschedule.String() != "reschedule" || Abandon.String() != "abandon" {
		t.Fatal("policy strings wrong")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy empty")
	}
}

func TestUtilizationDegenerate(t *testing.T) {
	r := &Report{BusySec: []float64{1, 2}}
	if u := r.Utilization(0); u[0] != 0 || u[1] != 0 {
		t.Fatal("zero-deadline utilization should be zero")
	}
}
