// Package exec simulates actually executing a task assignment on the
// members of a formed VO — the paper's final step ("Map and execute
// program T on VO C_k", Algorithm 1 line 15) that its evaluation assumes
// always succeeds. The simulator makes the assumption testable: GSPs
// process their assigned tasks sequentially (the paper's single-machine
// abstraction), may renege mid-execution (the unreliable-provider
// behaviour that motivates trust in the first place), and surviving
// members pick up the orphaned work under a rescheduling policy.
//
// The engine is discrete-event: a binary heap orders task completions and
// provider failures on a shared virtual clock. Output is a Report with the
// makespan, deadline verdict, per-GSP utilisation, and per-provider
// delivery outcomes in exactly the shape trust.History consumes — closing
// the loop from execution behaviour back to direct trust.
package exec
