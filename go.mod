module gridvo

go 1.22
